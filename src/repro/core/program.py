"""The whole-network compiled execution pipeline: typed IR, passes, executor.

:mod:`repro.core.graph` lowers a model into generic dataflow ops; this module
*types* them into a :class:`NetworkProgram` — a linear IR of executable ops —
optimizes it with graph-level passes, and runs it through a batched
:class:`Executor` with pluggable backends:

``quantize``        float activations → unsigned integers (one layer's params)
``pad_channels``    zero-point padding of thin layers (hoisted to compile time)
``bitserial_conv``  LUT bit-serial convolution in the raw ``Σ q·w`` domain
``bitserial_linear``LUT bit-serial fully-connected layer (raw domain)
``dequantize``      affine epilogue back to the real domain (scale, zero-point
                    correction, bias; BatchNorm folds in here)
``requantize``      dequantize *fused with the next layer's quantize*: the
                    activations stay integer across chains of compressed layers
``batchnorm``       frozen-statistics affine normalisation (float)
``activation``      relu / relu6
``pool``            max / avg / global-avg pooling
``flatten``, ``add``, ``conv``, ``linear``  float glue and uncompressed layers

Optimization passes (things the per-layer engine of PR 1 structurally could
not do, because each layer only ever saw its own inputs) live in
:mod:`repro.core.pipeline` as *registered passes* run by a
:class:`~repro.core.pipeline.PassManager` at an ordered optimization level
(``O0`` reference lowering … ``O3`` autotuned); :func:`compile_network`
drives the graph stage and the :class:`Executor` the schedule/tune stages.
The pipeline's IR verifier runs between passes in debug mode and once at
every compile exit.

Backends (``Executor(program, backend=...)``):

* ``"plan"`` — compiled :mod:`repro.core.kernel_plan` kernels with the fused
  epilogue; the fast path.
* ``"reference"`` — the original tap-loop kernels with the explicit legacy
  epilogue association; the bit-exact oracle.
* ``"cost"`` — registered by :mod:`repro.mcu.executor`: replays the program
  through the MCU cycle model instead of computing activations.

Numerics: an *unoptimized* program on the ``plan`` backend executes the exact
same compiled plans, in the exact same float association, as the per-layer
engine — bit-exact.  The optimization passes change only the float
association of the epilogue (BatchNorm scale folded into ``α``, the next
scale's reciprocal folded before rounding); integer-domain relu/max-pool are
exactly equivalent, so optimized outputs match the legacy path to float
rounding (~1e-12 relative), with a vanishing chance of single-LSB
requantization flips at rounding boundaries.
"""

from __future__ import annotations

import copy
import os
import queue
import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.bitserial import bitserial_conv2d_reference, bitserial_linear_reference
from repro.core.graph import NetworkGraph, lower_model
from repro.core.kernel_plan import compile_conv_plan, compile_linear_plan
from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.lut import LookupTable
from repro.core.pipeline import (
    PassManager,
    _consumer_map,
    _require_bound,
    autotune_schedule,
    level_enables,
    persistable_autotune,
    record_stage_report,
    recorded_autotune,
)
from repro.core.tracing import LayerTrace
from repro.nn import Module
from repro.nn import functional as F
from repro.quantization.quantizer import QuantParams


# ---------------------------------------------------------------------------
# IR
# ---------------------------------------------------------------------------
#: Every op kind a :class:`NetworkProgram` can contain.  This is the
#: canonical list: the typing stage only emits these, the executors only
#: accept these, and ``docs/ARCHITECTURE.md`` documents each one (a docs test
#: keeps the table in sync with this tuple).
IR_OP_KINDS: Tuple[str, ...] = (
    "quantize",
    "pad_channels",
    "bitserial_conv",
    "bitserial_linear",
    "dequantize",
    "requantize",
    "batchnorm",
    "activation",
    "pool",
    "flatten",
    "add",
    "conv",
    "linear",
)


@dataclass(eq=False)
class ProgramOp:
    """One typed op of a compiled network program.

    ``attrs`` holds everything needed to execute the op without the source
    module (so serialized programs round-trip); ``module`` is kept when
    available for trace reconstruction and the MCU cost backend's
    compression-policy decisions.
    """

    kind: str
    inputs: Tuple[int, ...]
    output: int
    name: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)
    module: Optional[Module] = None
    in_shape: Tuple[int, ...] = ()
    out_shape: Tuple[int, ...] = ()


@dataclass
class NetworkProgram:
    """A compressed model lowered to a linear IR of typed ops.

    ``lut`` is ``None`` for *structural* programs (compiled without
    calibration, e.g. for the MCU cost model); data execution requires a
    bound program (``lut`` set and every ``quantize`` op carrying params).
    """

    ops: List[ProgramOp]
    input_id: int
    output_id: int
    num_buffers: int
    input_shape: Tuple[int, ...]
    lut: Optional[LookupTable] = None
    act_bitwidth: int = 8
    optimized: bool = False
    # Planner/runtime counters of the most recent ahead-of-time
    # :class:`Executor` built for this program (arena bytes, steps fused,
    # shard count); ``None`` until one is built.  Surfaced by
    # :meth:`metadata` so bench records, saved artifacts and the serve
    # ``/stats`` payload all report the same numbers.
    plan_counters: Optional[Dict[str, Any]] = None
    # The optimization level this program was compiled at (one of
    # :data:`repro.core.pipeline.OPT_LEVELS`) and the JSON-able
    # :class:`~repro.core.pipeline.PipelineReport` the pass manager
    # attached; ``None`` only for artifacts predating the pass manager.
    opt_level: Optional[str] = None
    pipeline_report: Optional[Dict[str, Any]] = None
    # Native (O4) build metadata of the most recent successful
    # :func:`repro.core.codegen.bind_native`: the emitted C source plus the
    # JSON-able build record (ABI, content hashes, cflags).  Persisted into
    # saved artifacts so servers rebuild the exact same library
    # deterministically; ``None`` when the program never bound natively.
    native_build: Optional[Dict[str, Any]] = None

    @property
    def bound(self) -> bool:
        return self.lut is not None

    @property
    def effective_opt_level(self) -> str:
        """The level the program actually *runs* at.

        Infers pre-pass-manager artifacts from their ``optimized`` flag
        (optimized meant the graph passes *and* the ahead-of-time planner,
        i.e. today's ``O2``).  When the pipeline report records a fallback
        (e.g. ``O4`` requested but no C compiler on this host) the effective
        level is the report's downgraded one — callers never see a silent
        downgrade."""
        if self.opt_level is not None:
            report = self.pipeline_report
            if (
                isinstance(report, dict)
                and report.get("fallback_reason")
                and report.get("level") == self.opt_level
                and report.get("effective_level")
            ):
                return str(report["effective_level"])
            return self.opt_level
        return "O2" if self.optimized else "O0"

    def kinds(self) -> List[str]:
        return [op.kind for op in self.ops]

    def count(self, kind: str) -> int:
        return sum(1 for op in self.ops if op.kind == kind)

    @property
    def output_shape(self) -> Tuple[int, ...]:
        """Per-sample shape of the program output buffer."""
        for op in self.ops:
            if op.output == self.output_id:
                return tuple(op.out_shape)
        return tuple(self.input_shape)  # degenerate identity program

    def metadata(self) -> Dict[str, Any]:
        """Cheap JSON-able summary of the program (no arrays).

        This is what a model repository stores next to the serialized
        artifact so that listing/choosing models never has to open the
        ``.npz``; :func:`repro.core.export.read_program_metadata` derives the
        same keys from a saved artifact's JSON header.
        """
        op_counts: Dict[str, int] = {}
        for op in self.ops:
            op_counts[op.kind] = op_counts.get(op.kind, 0) + 1
        meta: Dict[str, Any] = {
            "input_shape": list(self.input_shape),
            "output_shape": list(self.output_shape),
            "num_ops": len(self.ops),
            "num_buffers": int(self.num_buffers),
            "op_counts": op_counts,
            "act_bitwidth": int(self.act_bitwidth),
            "optimized": bool(self.optimized),
            "opt_level": self.effective_opt_level,
            "bound": self.bound,
        }
        if self.pipeline_report is not None:
            meta["pipeline"] = copy.deepcopy(self.pipeline_report)
        if self.lut is not None:
            meta["lut"] = {
                "pool_size": int(self.lut.pool_size),
                "group_size": int(self.lut.group_size),
                "bitwidth": self.lut.bitwidth,
            }
        if self.plan_counters is not None:
            meta["execution_plan"] = dict(self.plan_counters)
        # Streaming capability (schema ≥ 3 artifacts): per-op propagation
        # rules and whether the whole program can execute incrementally.
        # Serving gates `/stream` requests on this key — its absence marks a
        # pre-streaming artifact, which servers reject with a clear
        # `stream_unsupported` reason instead of a KeyError.
        from repro.core.stream_plan import stream_support

        meta["stream"] = stream_support(self)
        if self.native_build is not None:
            # Header-only view of the native build (hashes/flags, no source).
            meta["native"] = {
                k: v for k, v in self.native_build.items() if k != "source"
            }
        return meta

    # -- geometry ---------------------------------------------------------------
    def layer_traces(self) -> List[LayerTrace]:
        """Per-layer geometry of every conv/linear op, as :class:`LayerTrace`.

        This is the IR-derived replacement for :func:`repro.core.tracing.
        trace_model`'s dummy-forward walk; the MCU estimators consume it.
        """
        traces = [t for t in (op_layer_trace(op) for op in self.ops) if t is not None]
        if traces:
            first_conv = next((t for t in traces if t.kind == "conv"), traces[0])
            first_conv.is_first = True
        return traces

    def describe(self) -> str:
        """Human-readable op listing (one line per op)."""
        lines = [
            f"NetworkProgram(input={self.input_shape}, ops={len(self.ops)}, "
            f"optimized={self.optimized}, bound={self.bound})"
        ]
        for op in self.ops:
            ins = ",".join(f"b{i}" for i in op.inputs)
            extra = ""
            if op.kind == "activation":
                extra = f" fn={op.attrs['fn']}"
            elif op.kind == "pool":
                extra = f" {op.attrs['pool']}"
            elif op.kind in ("bitserial_conv", "conv"):
                extra = f" k={op.attrs['kernel_size']} s={op.attrs['stride']}"
            lines.append(
                f"  {op.kind:<16} {ins} -> b{op.output}  {op.out_shape}{extra}"
                + (f"  [{op.name}]" if op.name else "")
            )
        return "\n".join(lines)


def op_layer_trace(op: ProgramOp) -> Optional[LayerTrace]:
    """The :class:`LayerTrace` of one conv/linear program op (else ``None``).

    Works without the source module (loaded programs), reconstructing the
    weight shape from the op geometry; ``is_first`` is left to the caller.
    """
    if op.kind in ("conv", "bitserial_conv"):
        c = int(op.attrs.get("in_channels", op.in_shape[0]))
        f, oh, ow = op.out_shape
        k = int(op.attrs["kernel_size"])
        groups = int(op.attrs.get("groups", 1))
        if op.module is not None:
            weight_shape = tuple(op.module.weight.shape)
        elif op.attrs.get("weight") is not None:
            weight_shape = tuple(op.attrs["weight"].shape)
        else:
            weight_shape = (f, c // groups, k, k)
        return LayerTrace(
            name=op.name,
            kind="conv",
            in_channels=c,
            out_channels=f,
            kernel_size=k,
            stride=int(op.attrs["stride"]),
            padding=int(op.attrs["padding"]),
            groups=groups,
            input_hw=op.in_shape[1:],
            output_hw=(oh, ow),
            weight_shape=weight_shape,
            has_bias=op.attrs.get("bias") is not None,
            module=op.module,
        )
    if op.kind in ("linear", "bitserial_linear"):
        c = int(op.attrs.get("in_channels", op.in_shape[0]))
        f = int(op.out_shape[0])
        if op.module is not None:
            weight_shape = tuple(op.module.weight.shape)
        elif op.attrs.get("weight") is not None:
            weight_shape = tuple(op.attrs["weight"].shape)
        else:
            weight_shape = (f, c)
        return LayerTrace(
            name=op.name,
            kind="linear",
            in_channels=c,
            out_channels=f,
            kernel_size=1,
            stride=1,
            padding=0,
            groups=1,
            input_hw=(1, 1),
            output_hw=(1, 1),
            weight_shape=weight_shape,
            has_bias=op.attrs.get("bias") is not None,
            module=op.module,
        )
    return None


# ---------------------------------------------------------------------------
# Typing: generic graph ops -> executable IR
# ---------------------------------------------------------------------------
def _layer_w_sums(lut: LookupTable, indices: np.ndarray) -> np.ndarray:
    """Per-filter pool-vector sums for the zero-point correction."""
    gathered = lut.pool_vector_sums()[indices]
    return gathered.reshape(indices.shape[0], -1).sum(axis=1)


def _type_graph(
    graph: NetworkGraph,
    lut: Optional[LookupTable],
    activation_params: Optional[Dict[int, QuantParams]],
) -> Tuple[List[ProgramOp], int, int]:
    """Expand generic graph ops into typed program ops with fresh buffers."""
    ops: List[ProgramOp] = []
    remap: Dict[int, int] = {graph.input_id: 0}
    next_buffer = 1

    def new_buffer() -> int:
        nonlocal next_buffer
        buf = next_buffer
        next_buffer += 1
        return buf

    def emit(kind, inputs, name, attrs, module, in_shape, out_shape) -> int:
        out = new_buffer()
        ops.append(
            ProgramOp(
                kind=kind,
                inputs=tuple(inputs),
                output=out,
                name=name,
                attrs=attrs,
                module=module,
                in_shape=tuple(in_shape),
                out_shape=tuple(out_shape),
            )
        )
        return out

    for gop in graph.ops:
        ins = tuple(remap[i] for i in gop.inputs)
        module = gop.module
        if gop.kind == "conv" and isinstance(module, WeightPoolConv2d):
            params = activation_params[id(module)] if activation_params else None
            buf = emit(
                "quantize", ins, gop.name, {"params": params}, None,
                gop.in_shape, gop.in_shape,
            )
            shape = gop.in_shape
            expected = module.indices.shape[1] * module.pool.group_size
            if expected != shape[0]:
                # Thin layer padded up to the group size: the channel check is
                # resolved here, at compile time, so the hot path never pads
                # (or even tests) when the shapes already agree.
                pad_shape = (expected,) + tuple(shape[1:])
                buf = emit(
                    "pad_channels", (buf,), gop.name,
                    {"pad": expected - shape[0],
                     "value": params.zero_point if params else 0},
                    None, shape, pad_shape,
                )
                shape = pad_shape
            bias = module.bias.data if module.bias is not None else None
            raw = emit(
                "bitserial_conv", (buf,), gop.name,
                {"indices": module.indices, "stride": module.stride,
                 "padding": module.padding, "kernel_size": module.kernel_size,
                 "groups": 1, "in_channels": module.in_channels,
                 "params": params, "bias": bias},
                module, shape, gop.out_shape,
            )
            remap[gop.output] = emit(
                "dequantize", (raw,), gop.name,
                {"params": params, "bias": bias,
                 "w_sums": _layer_w_sums(lut, module.indices) if lut else None,
                 "bn": None},
                None, gop.out_shape, gop.out_shape,
            )
        elif gop.kind == "linear" and isinstance(module, WeightPoolLinear):
            params = activation_params[id(module)] if activation_params else None
            buf = emit(
                "quantize", ins, gop.name, {"params": params}, None,
                gop.in_shape, gop.in_shape,
            )
            bias = module.bias.data if module.bias is not None else None
            raw = emit(
                "bitserial_linear", (buf,), gop.name,
                {"indices": module.indices, "in_channels": module.in_features,
                 "params": params, "bias": bias},
                module, gop.in_shape, gop.out_shape,
            )
            remap[gop.output] = emit(
                "dequantize", (raw,), gop.name,
                {"params": params, "bias": bias,
                 "w_sums": _layer_w_sums(lut, module.indices) if lut else None,
                 "bn": None},
                None, gop.out_shape, gop.out_shape,
            )
        elif gop.kind == "conv":
            remap[gop.output] = emit(
                "conv", ins, gop.name,
                {"weight": module.weight.data,
                 "bias": module.bias.data if module.bias is not None else None,
                 "stride": module.stride, "padding": module.padding,
                 "kernel_size": module.kernel_size, "groups": module.groups,
                 "in_channels": module.in_channels},
                module, gop.in_shape, gop.out_shape,
            )
        elif gop.kind == "linear":
            remap[gop.output] = emit(
                "linear", ins, gop.name,
                {"weight": module.weight.data,
                 "bias": module.bias.data if module.bias is not None else None,
                 "in_channels": module.in_features},
                module, gop.in_shape, gop.out_shape,
            )
        elif gop.kind == "batchnorm":
            # Snapshot the frozen statistics: programs are inference
            # artifacts; recompile after touching BN parameters or stats.
            remap[gop.output] = emit(
                "batchnorm", ins, gop.name,
                {"mean": module.running_mean.copy(),
                 "inv_std": 1.0 / np.sqrt(module.running_var + module.eps),
                 "gamma": module.gamma.data.copy(),
                 "beta": module.beta.data.copy()},
                module, gop.in_shape, gop.out_shape,
            )
        elif gop.kind in ("activation", "pool", "flatten", "add"):
            remap[gop.output] = emit(
                gop.kind, ins, gop.name, dict(gop.attrs), module,
                gop.in_shape, gop.out_shape,
            )
        else:  # pragma: no cover - the builder rejects unknown kinds already
            raise ValueError(f"cannot type graph op kind '{gop.kind}'")

    return ops, remap[graph.output_id], next_buffer


# ---------------------------------------------------------------------------
# Compilation entry point
# ---------------------------------------------------------------------------
def compile_network(
    model: Module,
    input_shape: Tuple[int, ...],
    lut: Optional[LookupTable] = None,
    activation_params: Optional[Dict[int, QuantParams]] = None,
    act_bitwidth: int = 8,
    optimize: bool = True,
    level: Optional[str] = None,
    passes: Optional[List[str]] = None,
    debug: Optional[bool] = None,
) -> NetworkProgram:
    """Lower ``model`` to a :class:`NetworkProgram` for a ``(C, H, W)`` input.

    With ``lut`` and ``activation_params`` (from a calibrated engine) the
    program is *bound* — executable through :class:`Executor`.  Without them
    the program is structural only (geometry + op stream), which is what the
    MCU cost backend consumes.

    The optimization pipeline is driven by the
    :class:`~repro.core.pipeline.PassManager`: ``level`` picks one of the
    ordered optimization levels (:data:`~repro.core.pipeline.OPT_LEVELS`,
    ``O0``–``O3``); the legacy ``optimize`` flag maps to ``O2``/``O0`` when
    no level is given.  ``passes`` optionally restricts the graph stage to
    an explicit pass selection.  Unknown level or pass names raise
    :class:`ValueError` listing the valid choices — misconfiguration fails
    at compile time instead of silently falling through to defaults.  Graph
    passes rewrite bound programs only (a structural program keeps the
    canonical op stream so cost attribution stays per-layer); the pipeline's
    IR verifier runs on both and its report is attached to the program.
    """
    if (lut is None) != (activation_params is None):
        raise ValueError("lut and activation_params must be provided together")
    if level is None:
        level = "O2" if optimize else "O0"
    manager = PassManager(level=level, passes=passes, debug=debug)
    graph = lower_model(model, input_shape)
    ops, output_id, num_buffers = _type_graph(graph, lut, activation_params)
    program = NetworkProgram(
        ops=ops,
        input_id=0,
        output_id=output_id,
        num_buffers=num_buffers,
        input_shape=tuple(input_shape),
        lut=lut,
        act_bitwidth=act_bitwidth,
        optimized=False,
    )
    manager.run(program)
    return program


# ---------------------------------------------------------------------------
# Execution: buffer pool + backends
# ---------------------------------------------------------------------------
class _BufferPool:
    """Free-list of released activation buffers, keyed by (shape, dtype).

    The executor returns dead intermediate buffers here and elementwise ops
    take their outputs from it, so steady-state batch execution allocates
    (almost) nothing after the first batch of each shape.  Each free list is
    capped: ops that allocate their own outputs (kernels, pools) release a
    buffer per run without ever taking one back, and an uncapped list would
    grow by that buffer every batch for the life of the executor.
    """

    _MAX_FREE_PER_KEY = 4

    def __init__(self) -> None:
        self._free: Dict[Tuple, List[np.ndarray]] = {}

    def take(self, shape: Tuple[int, ...], dtype) -> Optional[np.ndarray]:
        stack = self._free.get((tuple(shape), np.dtype(dtype).str))
        return stack.pop() if stack else None

    def take_like(self, array: np.ndarray) -> np.ndarray:
        out = self.take(array.shape, array.dtype)
        return out if out is not None else np.empty_like(array)

    def give(self, array: np.ndarray) -> None:
        stack = self._free.setdefault((array.shape, array.dtype.str), [])
        if len(stack) < self._MAX_FREE_PER_KEY:
            stack.append(array)


@dataclass
class Step:
    """One bound executable step of a backend schedule.

    ``op``/``plan``/``validated`` carry the compile-time context the
    ahead-of-time planner (:mod:`repro.core.memory_plan`) needs to retarget
    the schedule at preallocated arena memory: the IR op that produced the
    step, the compiled kernel plan of fused bit-serial steps, and whether
    the plan input is produced pre-validated.
    """

    fn: Callable[..., np.ndarray]
    inputs: Tuple[int, ...]
    output: int
    view: bool = False  # output may alias the input (reshape); don't pool it
    op: Optional[ProgramOp] = None
    plan: Optional[object] = None
    validated: bool = False


def _input_validated(producers: Dict[int, ProgramOp], buf: int) -> bool:
    """True when the producer chain guarantees in-range unsigned integers."""
    while True:
        op = producers.get(buf)
        if op is None:
            return False
        if op.kind in ("quantize", "requantize"):
            return True  # clipped to the representable range on write
        if op.kind in ("pad_channels", "flatten") or (
            op.kind == "pool" and op.attrs.get("integer")
        ):
            buf = op.inputs[0]
            continue
        return False


def _epilogue_terms(op: ProgramOp, epilogue: ProgramOp):
    """Compose the epilogue's ``α`` (scalar or per-filter) and ``β``.

    ``raw = table_scale·acc`` is the kernel output; the legacy epilogue
    ``scale·(raw − z·Σw) + bias``, an optional folded BatchNorm affine, and an
    optional fused requantization ``round(·/s₂) + z₂`` all compose into one
    ``α·acc + β`` (plus a clip for requantize).
    """
    params: QuantParams = op.attrs["params"]
    w_sums = epilogue.attrs["w_sums"]
    alpha = params.scale
    beta = -params.scale * params.zero_point * np.asarray(w_sums, dtype=np.float64)
    bias = epilogue.attrs.get("bias")
    if bias is not None:
        beta = beta + np.asarray(bias, dtype=np.float64)
    bn = epilogue.attrs.get("bn")
    if bn is not None:
        bn_scale, bn_shift = bn
        alpha = alpha * np.asarray(bn_scale, dtype=np.float64)
        beta = beta * bn_scale + bn_shift
    requant = None
    if epilogue.kind == "requantize":
        out_params: QuantParams = epilogue.attrs["out_params"]
        alpha = alpha / out_params.scale
        beta = beta / out_params.scale + out_params.zero_point
        out_dtype = np.dtype(np.uint8 if out_params.bitwidth <= 8 else np.uint16)
        requant = (
            float(epilogue.attrs["clip_lo"]),
            float(epilogue.attrs["clip_hi"]),
            out_dtype,
        )
    return alpha, np.asarray(beta, dtype=np.float64), requant


def _compile_op_plan(program: NetworkProgram, op: ProgramOp, epilogue: ProgramOp):
    """Compile the kernel plan executing ``op`` fused with its epilogue.

    Optimized programs additionally compile convolutions with the padding
    hoist (border work replaced by compile-time constants); unoptimized
    programs use the exact per-layer-engine compile path so the plan backend
    stays bit-exact with the legacy runtime.
    """
    params: QuantParams = op.attrs["params"]
    indices = op.attrs["indices"]
    hoist = program.optimized
    simple = epilogue.kind == "dequantize" and epilogue.attrs.get("bn") is None
    # For the simple epilogue this is the exact compile path (same arguments,
    # same float association) as the per-layer engine, so unoptimized programs
    # stay bit-exact with the legacy plan runtime; optimized programs add only
    # the padding hoist (documented float-order tolerance).
    if op.kind == "bitserial_conv":
        plan = compile_conv_plan(
            indices,
            program.lut,
            stride=op.attrs["stride"],
            padding=op.attrs["padding"],
            act_bitwidth=params.bitwidth,
            pad_value=params.zero_point,
            scale=params.scale if simple else None,
            zero_point=params.zero_point if simple else 0,
            bias=op.attrs.get("bias") if simple else None,
            hoist_padding=hoist,
        )
        if simple:
            return plan
        target = plan
    else:
        plan = compile_linear_plan(
            indices,
            program.lut,
            act_bitwidth=params.bitwidth,
            scale=params.scale if simple else None,
            zero_point=params.zero_point if simple else 0,
            bias=op.attrs.get("bias") if simple else None,
        )
        if simple:
            return plan
        target = plan.conv_plan
    alpha, beta, requant = _epilogue_terms(op, epilogue)
    # target.alpha currently holds the raw table scale; fold the composed α in.
    target.alpha = target.alpha * alpha
    target.beta = beta
    target.requant = requant
    return plan


def _exec_generic(op: ProgramOp, program: NetworkProgram, pool: _BufferPool,
                  active_bits: Optional[int] = None) -> Callable:
    """Executor for every op kind shared between the plan/reference backends."""
    kind = op.kind
    attrs = op.attrs
    if kind == "quantize":
        params: QuantParams = attrs["params"]
        out_dtype = np.dtype(np.uint8 if params.bitwidth <= 8 else np.uint16)
        # Clip bounds absorb folded relu/relu6 ops (monotone rounding).
        clip_lo = attrs.get("clip_lo", params.qmin)
        clip_hi = attrs.get("clip_hi", params.qmax)

        def fn(x):
            q = x / params.scale
            np.rint(q, out=q)
            q += params.zero_point
            np.clip(q, clip_lo, clip_hi, out=q)
            return q.astype(out_dtype, copy=False)

        return fn
    if kind == "pad_channels":
        pad, value = attrs["pad"], attrs["value"]
        width = ((0, 0), (0, pad)) + ((0, 0),) * (len(op.out_shape) - 1)
        return lambda x: np.pad(x, width[: x.ndim], mode="constant", constant_values=value)
    if kind in ("dequantize", "requantize"):
        params = attrs["params"]
        w_sums = np.asarray(attrs["w_sums"], dtype=np.float64)
        shape = (1, -1, 1, 1) if len(op.out_shape) == 3 else (1, -1)
        bias = attrs.get("bias")
        bn = attrs.get("bn")
        out_params = attrs.get("out_params")
        clip = (attrs.get("clip_lo"), attrs.get("clip_hi"))

        def fn(raw):
            # Legacy float association: the reference oracle's epilogue.
            out = params.scale * (raw - params.zero_point * w_sums.reshape(shape))
            if bias is not None:
                out = out + np.asarray(bias).reshape(shape[1:] if len(shape) == 2 else shape)
            if bn is not None:
                out = bn[0].reshape(shape) * out + bn[1].reshape(shape)
            if out_params is not None:
                q = np.round(out / out_params.scale)
                q += out_params.zero_point
                np.clip(q, clip[0], clip[1], out=q)
                out = q.astype(np.uint8 if out_params.bitwidth <= 8 else np.uint16, copy=False)
            return out

        return fn
    if kind == "batchnorm":
        mean = attrs["mean"].reshape(1, -1, 1, 1)
        inv_std = attrs["inv_std"].reshape(1, -1, 1, 1)
        gamma = attrs["gamma"].reshape(1, -1, 1, 1)
        beta = attrs["beta"].reshape(1, -1, 1, 1)

        def fn(x):
            out = pool.take(x.shape, x.dtype)
            if out is None:
                out = np.empty_like(x)
            # Same association as BatchNorm2d.forward in eval mode.
            np.subtract(x, mean, out=out)
            np.multiply(out, inv_std, out=out)
            np.multiply(out, gamma, out=out)
            np.add(out, beta, out=out)
            return out

        return fn
    if kind == "activation":
        if attrs["fn"] == "relu6":
            def fn(x):
                out = pool.take(x.shape, x.dtype)
                return np.clip(x, 0.0, 6.0, out=out) if out is not None else np.clip(x, 0.0, 6.0)
            return fn

        def fn(x):
            out = pool.take(x.shape, x.dtype)
            if out is None:
                return np.maximum(x, x.dtype.type(0))
            return np.maximum(x, x.dtype.type(0), out=out)

        return fn
    if kind == "pool":
        variant = attrs["pool"]
        if variant == "global_avg":
            return lambda x: x.mean(axis=(2, 3))
        k = attrs["kernel"]
        if variant == "max":
            return lambda x: x.reshape(
                x.shape[0], x.shape[1], x.shape[2] // k, k, x.shape[3] // k, k
            ).max(axis=(3, 5))
        return lambda x: x.reshape(
            x.shape[0], x.shape[1], x.shape[2] // k, k, x.shape[3] // k, k
        ).mean(axis=(3, 5))
    if kind == "flatten":
        return lambda x: x.reshape(x.shape[0], -1)
    if kind == "add":
        def fn(x, y):
            out = pool.take(x.shape, x.dtype)
            if out is None:
                return x + y
            return np.add(x, y, out=out)

        return fn
    if kind == "conv":
        weight, bias = attrs["weight"], attrs["bias"]
        stride, padding, groups = attrs["stride"], attrs["padding"], attrs["groups"]
        return lambda x: F.conv2d_forward(x, weight, bias, stride, padding, groups)[0]
    if kind == "linear":
        weight, bias = attrs["weight"], attrs["bias"]
        if bias is None:
            return lambda x: x @ weight.T
        return lambda x: x @ weight.T + bias
    if kind == "bitserial_conv":
        params = attrs["params"]
        return lambda x: bitserial_conv2d_reference(
            x,
            attrs["indices"],
            program.lut,
            stride=attrs["stride"],
            padding=attrs["padding"],
            act_bitwidth=params.bitwidth,
            active_bits=active_bits,
            pad_value=params.zero_point,
        )
    if kind == "bitserial_linear":
        params = attrs["params"]
        return lambda x: bitserial_linear_reference(
            x,
            attrs["indices"],
            program.lut,
            act_bitwidth=params.bitwidth,
            active_bits=active_bits,
        )
    raise ValueError(f"no executor for op kind '{kind}'")


# Per-image working-set budget steering the executor's batch tiling: chosen
# so one layer's stage-1 partials (+ scratch) of a micro-batch stay cache-
# resident, which measurably beats streaming a whole large batch per layer.
_TILE_BUDGET_BYTES = 2 << 20


def _stage1_bytes_per_image(op: ProgramOp, plan) -> int:
    """Stage-1 working set (pv + scratch) of one image for a bit-serial op."""
    conv_plan = getattr(plan, "conv_plan", plan)
    c, h, w = (op.in_shape + (1, 1))[:3]
    if conv_plan.padding and not conv_plan.hoist_padding:
        h, w = h + 2 * conv_plan.padding, w + 2 * conv_plan.padding
    groups = max(conv_plan.in_channels // conv_plan.group_size, 1)
    width = conv_plan.tables.shape[-1]
    return 2 * groups * h * w * width * conv_plan.partial_dtype.itemsize


def _bind_plan(program: NetworkProgram, executor: "Executor",
               active_bits: Optional[int] = None) -> List[Step]:
    """Schedule with compiled kernel plans; fuses each bit-serial op with its
    dequantize/requantize epilogue into a single plan call, and sizes the
    executor's batch tile so the largest layer's working set stays in cache."""
    _require_bound(program)
    producers = {op.output: op for op in program.ops}
    consumers = _consumer_map(program.ops)
    steps: List[Step] = []
    fused: set = set()
    peak_per_image = 0
    for op in program.ops:
        if id(op) in fused:
            continue
        if op.kind in ("bitserial_conv", "bitserial_linear"):
            users = consumers.get(op.output, [])
            if len(users) != 1 or users[0].kind not in ("dequantize", "requantize"):
                raise RuntimeError(
                    f"bit-serial op '{op.name}' has no epilogue op to fuse with"
                )
            epilogue = users[0]
            plan = _compile_op_plan(program, op, epilogue)
            validated = _input_validated(producers, op.inputs[0])
            peak_per_image = max(peak_per_image, _stage1_bytes_per_image(op, plan))
            steps.append(
                Step(
                    fn=lambda x, _plan=plan, _v=validated: _plan(
                        x, active_bits=active_bits, validated=_v
                    ),
                    inputs=op.inputs,
                    output=epilogue.output,
                    op=op,
                    plan=plan,
                    validated=validated,
                )
            )
            fused.add(id(epilogue))
        else:
            steps.append(
                Step(
                    fn=_exec_generic(op, program, executor.pool, active_bits),
                    inputs=op.inputs,
                    output=op.output,
                    view=op.kind == "flatten",
                    op=op,
                )
            )
    # Auto-tile only optimized programs: micro-batching is per-sample exact
    # for every op we emit, but BLAS reorders the float convs' reductions
    # with batch size, and the unoptimized program is the bit-exact oracle.
    if executor.tile is None and peak_per_image and program.optimized:
        executor.tile = int(np.clip(_TILE_BUDGET_BYTES // peak_per_image, 1, 64))
    return steps


def _bind_reference(program: NetworkProgram, executor: "Executor",
                    active_bits: Optional[int] = None) -> List[Step]:
    """Schedule with the original tap-loop kernels and explicit epilogues."""
    _require_bound(program)
    return [
        Step(
            fn=_exec_generic(op, program, executor.pool, active_bits),
            inputs=op.inputs,
            output=op.output,
            view=op.kind == "flatten",
            op=op,
        )
        for op in program.ops
    ]


BACKENDS: Dict[str, Callable] = {}


def register_backend(name: str, bind: Callable) -> None:
    """Register an executor backend: ``bind(program, executor, **options)``.

    ``bind`` returns the step schedule and may attach backend-specific results
    to the executor (the MCU ``cost`` backend records per-layer cycles).
    """
    BACKENDS[name] = bind


register_backend("plan", _bind_plan)
register_backend("reference", _bind_reference)
# The native (O4) backend shares the plan backend's schedule bind; the
# executor additionally emits/compiles the planned schedule's eligible steps
# to a shared library after planning (and falls back to plan when it cannot).
register_backend("native", _bind_plan)


def auto_backend(backend: str, program: Optional[NetworkProgram]) -> str:
    """Upgrade a defaulted ``plan`` backend to ``native`` for O4 programs.

    Consumers that pick a backend on the caller's behalf (the engine's
    executor cache, the serve worker pools) route O4-compiled programs to the
    native backend; :class:`Executor` degrades back to ``plan`` gracefully —
    with a surfaced ``fallback_reason`` — when the host cannot build it.
    Tests and callers that want the pure plan oracle pass ``backend="plan"``
    to :class:`Executor` directly, which never upgrades.
    """
    if (
        backend == "plan"
        and program is not None
        and getattr(program, "opt_level", None) == "O4"
    ):
        return "native"
    return backend


def _chunk_bounds(n: int, k: int, tile: int) -> List[Tuple[int, int]]:
    """Split ``n`` samples into ``k`` contiguous chunks of whole tiles.

    Chunk boundaries land on tile multiples, so the micro-batches every
    shard executes are the *same* tiles a serial run would execute — the
    float convs' BLAS reductions see identical batches and the sharded
    result stays bitwise identical for every shard count.
    """
    tiles = -(-n // tile)
    base, extra = divmod(tiles, k)
    bounds = []
    start = 0
    for i in range(k):
        size = (base + (1 if i < extra else 0)) * tile
        bounds.append((start, min(start + size, n)))
        start += size
    return bounds


def _default_shard_count() -> int:
    """Shard count the executor picks when ``n_shards`` is unset: one worker
    per core up to a modest cap, serial on single-core machines."""
    cpus = os.cpu_count() or 1
    return 1 if cpus < 2 else min(cpus, 8)


class Executor:
    """Runs a bound :class:`NetworkProgram` batch-wise through a backend.

    Optimized plan-backend programs execute through an **ahead-of-time
    execution plan** (:mod:`repro.core.memory_plan`): elementwise glue fused
    into single steps, every intermediate placed at a fixed offset of a
    preallocated arena, and large batches split across a pool of per-shard
    arenas on worker threads (NumPy releases the GIL in the hot kernels;
    single-core machines stay serial).  ``run`` is thread-safe on this path —
    concurrent callers share the shard pool.

    The refcounted, shape-keyed buffer pool remains the fallback — and the
    path for unoptimized/reference programs, whose bit-exactness contract
    against the per-layer engine predates the planner.

    Parameters
    ----------
    tile:
        Micro-batch size; ``None`` lets the backend choose (the plan backend
        sizes it so the largest layer's stage-1 working set stays
        cache-resident), 0 disables tiling on the pooled path.
    n_shards:
        Worker arenas for the planned path; ``None`` picks one per core
        (capped at 8, 1 on single-core machines).
    memory_plan:
        Force the ahead-of-time plan on (raises
        :class:`~repro.core.memory_plan.PlanUnsupported` when the program
        cannot be planned) or off (always pool).  Defaults to planning
        exactly the optimized plan-backend programs.
    track_memory:
        Record ``peak_pool_bytes`` (live buffers + pool free lists) while
        running on the pooled path — benchmark instrumentation.
    """

    def __init__(
        self,
        program: NetworkProgram,
        backend: str = "plan",
        tile: Optional[int] = None,
        n_shards: Optional[int] = None,
        memory_plan: Optional[bool] = None,
        track_memory: bool = False,
        **options,
    ):
        if backend not in BACKENDS:
            known = ", ".join(sorted(BACKENDS))
            hint = " (the 'cost' backend registers on `import repro.mcu`)" if backend == "cost" else ""
            raise KeyError(f"unknown backend '{backend}'; registered: {known}{hint}")
        self.program = program
        self.backend = backend
        self.pool = _BufferPool()
        # Batch tile: incoming batches are split into micro-batches of this
        # size and run through the whole program tile-by-tile, keeping the
        # inter-layer working set cache-resident.  Ops treat samples
        # independently, so tiling is bit-exact.  ``None`` lets the backend
        # choose (the plan backend sizes it from the largest layer's stage-1
        # footprint); pass 0 to disable.
        requested_tile = tile  # None = tunable by the O3 autotuner
        self.tile = tile
        self.track_memory = track_memory
        self.peak_pool_bytes = 0
        self._steps = BACKENDS[backend](program, self, **options)
        self._refcounts: Dict[int, int] = {}
        for step in self._steps:
            for buf in step.inputs:
                self._refcounts[buf] = self._refcounts.get(buf, 0) + 1
        self._refcounts[program.output_id] = (
            self._refcounts.get(program.output_id, 0) + 1
        )
        # Never recycle the caller's input, nor buffers a reshape view borrows.
        self._no_pool = {program.input_id}
        for step in self._steps:
            if step.view:
                self._no_pool.update(step.inputs)
                self._no_pool.add(step.output)

        # -- ahead-of-time execution plan (arena + fused steps + shards) ----
        # The schedule ("memory_plan") and tune ("autotune") pipeline stages
        # run here, gated by the program's optimization level: O2 enables the
        # arena plan, O3 additionally autotunes kernel variants and the
        # tile/shard choices before planning.
        level = program.effective_opt_level
        explicit_plan = memory_plan is True
        if memory_plan is None:
            memory_plan = (
                backend in ("plan", "native")
                and program.bound
                and program.optimized
                and level_enables(level, "O2")
            )
        self.exec_plan = None
        self._native = None  # NativeExecution after a successful O4 bind
        self.plan_info: Optional[Dict[str, Any]] = None
        self.autotune: Optional[Dict[str, Any]] = None
        self._runtime_q: Optional[queue.LifoQueue] = None
        self._shard_threads = None
        self._shard_lock = threading.Lock()
        self.max_shards_used = 0
        if memory_plan:
            from repro.core.memory_plan import PlanUnsupported, compile_execution_plan

            plan_tile = self.tile if self.tile else 64
            requested_shards = n_shards
            bound_tile = self.tile  # the backend's heuristic (or caller) tile
            if (
                backend in ("plan", "native")
                and program.bound
                and program.optimized
                and level_enables(level, "O3")
            ):
                # A previous bind's recorded winners (this session or a
                # loaded artifact's header) replay deterministically with no
                # timing runs; only a first-ever bind micro-benchmarks.
                self.autotune = autotune_schedule(
                    program,
                    self._steps,
                    default_tile=plan_tile,
                    active_bits=options.get("active_bits"),
                    tune_tile=requested_tile is None,
                    tune_shards=n_shards is None,
                    fixed_shards=n_shards,
                    recorded=recorded_autotune(program),
                )
                if requested_tile is None:
                    self.tile = plan_tile = int(self.autotune["tile"]["chosen"])
                if n_shards is None:
                    n_shards = int(self.autotune["n_shards"]["chosen"])
            try:
                self.exec_plan = compile_execution_plan(
                    program,
                    self._steps,
                    tile=plan_tile,
                    active_bits=options.get("active_bits"),
                )
            except PlanUnsupported:
                # Auto-selected planning falls back to the buffer pool; an
                # explicit request surfaces why the program cannot be
                # planned.  The pooled fallback keeps PR 2's execution, so
                # every tuned decision rolls back: the tile/shard choices,
                # and the kernel-plan specializations the tuner already
                # applied in place (bitwise-identical either way, but the
                # pooled path is the A/B baseline and must stay canonical).
                if explicit_plan:
                    raise
                if self.autotune is not None:
                    for step in self._steps:
                        plan = getattr(step, "plan", None)
                        if plan is None:
                            continue
                        conv_plan = getattr(plan, "conv_plan", plan)
                        if getattr(conv_plan, "_autotuned", False):
                            conv_plan.tap_gather = "fused"
                            conv_plan.encoder = "packbits"
                            conv_plan._autotuned = False
                self.autotune = None
                self.tile = bound_tile
                n_shards = requested_shards
            else:
                # Record the schedule/tune stages only once they are live.
                if self.autotune is not None:
                    record_stage_report(
                        program,
                        {
                            "name": "autotune",
                            "stage": "tune",
                            "counters": {
                                "layers_tuned": self.autotune["layers_tuned"],
                                "trials": self.autotune["trials"],
                                "tile": self.autotune["tile"]["chosen"],
                                "n_shards": self.autotune["n_shards"]["chosen"],
                            },
                            "decisions": persistable_autotune(self.autotune),
                        },
                    )
                record_stage_report(
                    program,
                    {
                        "name": "memory_plan",
                        "stage": "schedule",
                        "counters": dict(self.exec_plan.counters),
                    },
                )
        # -- native (O4) codegen bind ----------------------------------------
        # The ``codegen`` pipeline stage runs here, after planning: the
        # native backend lowers the planned schedule's eligible steps to C,
        # compiles (or cache-loads) them, and replaces those steps with
        # library calls.  Expected failures downgrade to the plan backend
        # with a surfaced ``fallback_reason`` — never silently.
        if self.backend == "native":
            self._bind_native(options.get("active_bits"))
        if self.exec_plan is not None:
            from repro.core.memory_plan import ShardRuntime

            self.n_shards = max(
                1, n_shards if n_shards is not None else _default_shard_count()
            )
            self._runtime_q = queue.LifoQueue()
            for _ in range(self.n_shards):
                self._runtime_q.put(ShardRuntime(self.exec_plan))
            self.plan_info = dict(self.exec_plan.counters)
            self.plan_info["n_shards"] = self.n_shards
            # ``self.backend`` (not the requested one): a failed native bind
            # has already downgraded it, and /stats reports what actually runs.
            self.plan_info["backend"] = self.backend
            if self._native is not None:
                self.plan_info["native"] = self._native.counters()
            if self.autotune is not None:
                self.plan_info["autotune"] = self.autotune
            program.plan_counters = dict(self.plan_info)
        else:
            self.n_shards = max(1, n_shards or 1)

    def _bind_native(self, active_bits: Optional[int]) -> None:
        """Attempt the native (O4) codegen bind; fall back to ``plan``.

        Every *expected* obstacle — the program could not be planned, no
        schedule step is native-eligible, or the host has no C compiler and
        the build cache is cold — reverts this executor to the plan backend
        and records the reason in the program's pipeline report (surfaced by
        ``effective_opt_level``, artifact headers and serve ``/stats``).  A
        compiler *rejecting* the emitted source is a codegen bug and
        propagates as :class:`~repro.core.codegen.NativeBuildError`.
        """
        from repro.core.codegen import CodegenUnsupported, NoCompilerError, bind_native

        reason = None
        if self.exec_plan is None:
            reason = "no_execution_plan"
        else:
            try:
                self._native = bind_native(
                    self.program, self._steps, self.exec_plan, active_bits=active_bits
                )
            except NoCompilerError:
                reason = "no_compiler"
            except CodegenUnsupported:
                reason = "no_native_steps"
        report = self.program.pipeline_report
        if self._native is not None:
            build = dict(self._native.build_meta())
            build["source"] = self._native.emitted.source
            self.program.native_build = build
            record_stage_report(
                self.program,
                {
                    "name": "codegen",
                    "stage": "codegen",
                    "counters": dict(self._native.counters()),
                },
            )
            if isinstance(report, dict) and report.get("level") == "O4":
                # A successful bind clears a compile-time probe's fallback —
                # the build cache can satisfy O4 without a live compiler.
                report["fallback_reason"] = None
                report["effective_level"] = "O4"
            return
        self.backend = "plan"
        if isinstance(report, dict) and report.get("level") == "O4":
            report["fallback_reason"] = reason
            report["effective_level"] = "O3"
        warnings.warn(
            f"native (O4) backend unavailable ({reason}); falling back to "
            "the plan backend (effective level O3)",
            RuntimeWarning,
            stacklevel=3,
        )

    @property
    def thread_safe(self) -> bool:
        """True when concurrent ``run`` calls are safe (planned path only)."""
        return self.exec_plan is not None

    def close(self) -> None:
        """Shut down the shard worker threads (idempotent; runs still work
        serially afterwards on a fresh pool if called again)."""
        with self._shard_lock:
            threads, self._shard_threads = self._shard_threads, None
        if threads is not None:
            threads.shutdown(wait=True)

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute one batch and return the output.

        The planned path writes every shard's result into one preallocated
        output slice, so assembly is deterministic and the result is
        bitwise identical to a serial run.
        """
        x = np.asarray(x)
        if self.exec_plan is not None and x.ndim == len(self.program.input_shape) + 1:
            return self._run_planned(x)
        if self.tile and x.shape[0] > self.tile:
            return np.concatenate(
                [self._run_tile(x[i : i + self.tile]) for i in range(0, x.shape[0], self.tile)]
            )
        return self._run_tile(x)

    def _run_tile(self, x: np.ndarray) -> np.ndarray:
        buffers: Dict[int, np.ndarray] = {self.program.input_id: np.asarray(x)}
        remaining = dict(self._refcounts)
        for step in self._steps:
            args = [buffers[buf] for buf in step.inputs]
            buffers[step.output] = step.fn(*args)
            for buf in step.inputs:
                remaining[buf] -= 1
                if remaining[buf] == 0:
                    dead = buffers.pop(buf)
                    if buf not in self._no_pool:
                        self.pool.give(dead)
            if self.track_memory:
                live = sum(arr.nbytes for arr in buffers.values())
                pooled = sum(
                    arr.nbytes for stack in self.pool._free.values() for arr in stack
                )
                self.peak_pool_bytes = max(self.peak_pool_bytes, live + pooled)
        return buffers[self.program.output_id]

    # -- planned execution ---------------------------------------------------
    def _run_planned(self, x: np.ndarray) -> np.ndarray:
        plan = self.exec_plan
        # The plan's buffer specs are typed for float64 inputs (what the data
        # loaders produce); the native segments additionally require a
        # C-contiguous input.  No-op (no copy) for contiguous float64 input.
        x = np.ascontiguousarray(x, dtype=np.float64)
        n = x.shape[0]
        out = np.empty((n,) + plan.out_shape, dtype=plan.out_dtype)
        if n == 0:
            return out
        runtimes = [self._runtime_q.get()]
        try:
            if self.n_shards > 1 and n > plan.tile:
                # Grab whatever other shards are idle right now — concurrent
                # run() calls share the pool, each taking what is free.
                want = min(self.n_shards, -(-n // plan.tile))
                while len(runtimes) < want:
                    try:
                        runtimes.append(self._runtime_q.get_nowait())
                    except queue.Empty:
                        break
            k = len(runtimes)
            self.max_shards_used = max(self.max_shards_used, k)
            if k == 1:
                self._run_chunk(runtimes[0], x, out)
            else:
                bounds = _chunk_bounds(n, k, plan.tile)
                threads = self._shard_pool()
                futures = [
                    threads.submit(self._run_chunk, rt, x[a:b], out[a:b])
                    for rt, (a, b) in zip(runtimes[1:], bounds[1:])
                ]
                a, b = bounds[0]
                errors: List[BaseException] = []
                try:
                    self._run_chunk(runtimes[0], x[a:b], out[a:b])
                except BaseException as exc:
                    errors.append(exc)
                # Wait for *every* chunk before surfacing an error: a
                # runtime must never return to the pool while its worker
                # thread is still executing on it.
                for future in futures:
                    try:
                        future.result()
                    except BaseException as exc:
                        errors.append(exc)
                if errors:
                    raise errors[0]
        finally:
            for rt in runtimes:
                self._runtime_q.put(rt)
        return out

    def _shard_pool(self):
        with self._shard_lock:
            if self._shard_threads is None:
                from concurrent.futures import ThreadPoolExecutor

                self._shard_threads = ThreadPoolExecutor(
                    max_workers=self.n_shards, thread_name_prefix="executor-shard"
                )
            return self._shard_threads

    def _run_chunk(self, runtime, x: np.ndarray, out: np.ndarray) -> None:
        tile = self.exec_plan.tile
        for i in range(0, x.shape[0], tile):
            self._run_planned_tile(runtime, x[i : i + tile], out[i : i + tile])

    def _run_planned_tile(self, runtime, x: np.ndarray, out: np.ndarray) -> None:
        plan = self.exec_plan
        n = x.shape[0]
        buffers: List[Optional[np.ndarray]] = [None] * self.program.num_buffers
        buffers[plan.input_id] = x
        native = self._native
        schedule = plan.steps if native is None else native.schedule
        for step in schedule:
            if native is not None and not hasattr(step, "fn"):
                # A compiled segment covering a contiguous run of plan steps.
                native.run_segment(step, buffers, runtime, n)
                continue
            args = [buffers[buf] for buf in step.inputs]
            placement = step.placement
            if placement == "arena":
                o = runtime.view(step.output, n)
            elif placement == "output":
                o = out
            else:  # view / heap allocate or alias internally
                o = None
            buffers[step.output] = step.fn(args, o, runtime)

    predict = run

    def evaluate(self, loader) -> float:
        """Top-1 accuracy over a data loader."""
        correct = 0
        total = 0
        for inputs, targets in loader:
            logits = self.run(inputs)
            correct += int((logits.argmax(axis=1) == targets).sum())
            total += len(targets)
        if total == 0:
            raise ValueError("evaluation loader produced no samples")
        return correct / total
