"""Weight grouping: z-dimension (channel) vectors and xy-dimension (kernel) vectors.

The paper's key compression choice (§3, Figure 3) is grouping weights into
1×``group_size`` vectors along the *channel* (z) dimension of each 3D filter,
rather than clustering whole 2D kernels (the xy-dimension baseline of Son et
al. 2018, evaluated in Figure 4).  This module provides the pure array
transformations: extract vectors from a weight tensor, and reconstruct a
weight tensor from pool indices.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


# ---------------------------------------------------------------------------
# z-dimension grouping
# ---------------------------------------------------------------------------
def pad_channels_to_group(weight: np.ndarray, group_size: int) -> np.ndarray:
    """Zero-pad the channel dimension of ``(F, C, KH, KW)`` to a multiple of ``group_size``.

    The paper mentions zero padding as the alternative to leaving thin layers
    uncompressed.
    """
    if weight.ndim != 4:
        raise ValueError(f"expected 4D conv weight, got shape {weight.shape}")
    c = weight.shape[1]
    remainder = c % group_size
    if remainder == 0:
        return weight
    pad = group_size - remainder
    return np.pad(weight, ((0, 0), (0, pad), (0, 0), (0, 0)), mode="constant")


def extract_z_vectors(weight: np.ndarray, group_size: int) -> np.ndarray:
    """Group a conv weight ``(F, C, KH, KW)`` into z-dimension vectors.

    Channels are split into ``C / group_size`` consecutive groups; each filter
    and spatial position contributes one vector per channel group, exactly as
    in Figure 3 of the paper.

    Returns an array of shape ``(F * C/g * KH * KW, group_size)``.  The channel
    count must be divisible by ``group_size`` (callers either pad first with
    :func:`pad_channels_to_group` or leave the layer uncompressed).
    """
    if weight.ndim != 4:
        raise ValueError(f"expected 4D conv weight, got shape {weight.shape}")
    f, c, kh, kw = weight.shape
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if c % group_size:
        raise ValueError(
            f"channel count {c} not divisible by group size {group_size}; "
            "pad the weight or leave the layer uncompressed"
        )
    groups = c // group_size
    # (F, groups, g, KH, KW) -> (F, groups, KH, KW, g)
    vectors = weight.reshape(f, groups, group_size, kh, kw).transpose(0, 1, 3, 4, 2)
    return vectors.reshape(-1, group_size)


def z_index_shape(weight_shape: Tuple[int, ...], group_size: int) -> Tuple[int, int, int, int]:
    """Shape of the index tensor for a z-grouped conv weight: ``(F, C/g, KH, KW)``."""
    f, c, kh, kw = weight_shape
    if c % group_size:
        raise ValueError(f"channel count {c} not divisible by group size {group_size}")
    return (f, c // group_size, kh, kw)


def reconstruct_from_z_indices(
    indices: np.ndarray,
    pool_vectors: np.ndarray,
    num_channels: Optional[int] = None,
) -> np.ndarray:
    """Rebuild a conv weight from z-dimension pool indices.

    Parameters
    ----------
    indices:
        ``(F, C/g, KH, KW)`` integer indices into the pool.
    pool_vectors:
        ``(S, g)`` pool.
    num_channels:
        If the original channel count was padded up to a multiple of ``g``,
        pass the original count to slice the reconstruction back down.
    """
    if indices.ndim != 4:
        raise ValueError(f"expected 4D index tensor, got shape {indices.shape}")
    pool_vectors = np.asarray(pool_vectors)
    s, g = pool_vectors.shape
    if indices.size and (indices.min() < 0 or indices.max() >= s):
        raise ValueError("index out of range for the given pool")
    f, groups, kh, kw = indices.shape
    gathered = pool_vectors[indices]  # (F, groups, KH, KW, g)
    weight = gathered.transpose(0, 1, 4, 2, 3).reshape(f, groups * g, kh, kw)
    if num_channels is not None:
        if not 0 < num_channels <= groups * g:
            raise ValueError(
                f"num_channels {num_channels} incompatible with padded count {groups * g}"
            )
        weight = weight[:, :num_channels]
    return weight


# ---------------------------------------------------------------------------
# z-dimension grouping for fully-connected layers
# ---------------------------------------------------------------------------
def extract_linear_z_vectors(weight: np.ndarray, group_size: int) -> np.ndarray:
    """Group a linear weight ``(out, in)`` into vectors along the input dimension."""
    if weight.ndim != 2:
        raise ValueError(f"expected 2D linear weight, got shape {weight.shape}")
    out_features, in_features = weight.shape
    if in_features % group_size:
        raise ValueError(
            f"in_features {in_features} not divisible by group size {group_size}"
        )
    return weight.reshape(out_features * (in_features // group_size), group_size)


def reconstruct_linear_from_z_indices(
    indices: np.ndarray, pool_vectors: np.ndarray
) -> np.ndarray:
    """Rebuild a linear weight from ``(out, in/g)`` pool indices."""
    if indices.ndim != 2:
        raise ValueError(f"expected 2D index tensor, got shape {indices.shape}")
    pool_vectors = np.asarray(pool_vectors)
    s, g = pool_vectors.shape
    if indices.size and (indices.min() < 0 or indices.max() >= s):
        raise ValueError("index out of range for the given pool")
    out_features, groups = indices.shape
    gathered = pool_vectors[indices]  # (out, groups, g)
    return gathered.reshape(out_features, groups * g)


# ---------------------------------------------------------------------------
# xy-dimension grouping (the Figure 4 baseline)
# ---------------------------------------------------------------------------
def extract_xy_vectors(weight: np.ndarray) -> np.ndarray:
    """Flatten each 2D kernel of ``(F, C, KH, KW)`` into a ``KH*KW`` vector."""
    if weight.ndim != 4:
        raise ValueError(f"expected 4D conv weight, got shape {weight.shape}")
    f, c, kh, kw = weight.shape
    return weight.reshape(f * c, kh * kw)


def reconstruct_from_xy_indices(
    indices: np.ndarray,
    pool_vectors: np.ndarray,
    weight_shape: Tuple[int, int, int, int],
    coefficients: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Rebuild a conv weight from per-kernel xy pool indices.

    ``indices`` has shape ``(F * C,)`` (one pool entry per 2D kernel);
    ``coefficients``, if given, scales each reconstructed kernel (the
    "with coefficient" variant of Son et al. evaluated in Figure 4).
    """
    f, c, kh, kw = weight_shape
    pool_vectors = np.asarray(pool_vectors)
    if pool_vectors.shape[1] != kh * kw:
        raise ValueError(
            f"pool vector length {pool_vectors.shape[1]} does not match kernel size {kh * kw}"
        )
    indices = np.asarray(indices).reshape(f * c)
    kernels = pool_vectors[indices]  # (F*C, KH*KW)
    if coefficients is not None:
        coefficients = np.asarray(coefficients).reshape(f * c, 1)
        kernels = kernels * coefficients
    return kernels.reshape(f, c, kh, kw)


def least_squares_coefficients(
    kernels: np.ndarray, pool_vectors: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Optimal per-kernel scaling coefficients ``argmin_a ||kernel - a * pool[idx]||``."""
    assigned = pool_vectors[indices]
    denom = (assigned**2).sum(axis=1)
    numer = (kernels * assigned).sum(axis=1)
    coeffs = np.where(denom > 0, numer / np.maximum(denom, 1e-12), 0.0)
    return coeffs
