"""Whole-network bit-serial inference engine.

The engine reproduces what the paper's deployment flow does on the host and
the microcontroller:

1. **Calibration** — run a few batches through the compressed model in float
   mode while observing the input of every weight-pool layer.
2. **Freezing** — derive per-layer activation quantization parameters at the
   requested activation bitwidth (iterative range search by default, §5.3.3).
3. **Bit-serial execution** — install a runtime on every weight-pool layer
   that quantizes its input, runs the LUT-based bit-serial kernel
   (:mod:`repro.core.bitserial`), corrects for the activation zero point using
   the LUT's all-ones entry, and rescales back to the real domain.  The rest
   of the network (batch norm, activations, pooling, classifier) runs in
   float, matching the paper's PyTorch accuracy simulation.

The engine supports three execution modes:

* ``use_lut=True`` (default) — full bit-serial LUT simulation (optionally with
  a quantized LUT, Table 5).
* ``use_lut=False`` — "No-LUT" mode: activations are fake-quantized and the
  reconstructed pool weights are used directly (the Table 5 reference column).
* ``float`` (no engine installed) — plain weight-pool accuracy (Table 4).

Since the whole-network compiler landed, the default execution path is
**compile-then-execute**: after calibration the engine lowers the model into a
:class:`~repro.core.program.NetworkProgram` (BatchNorm folded into the
bit-serial epilogues, back-to-back dequantize→quantize pairs elided) and
delegates ``predict``/``evaluate`` to the batched graph
:class:`~repro.core.program.Executor`.  The original per-layer runtime-install
path is kept as the oracle — ``EngineConfig(use_graph=False)``, or entering
the engine as a context manager, still runs it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.bitserial import bitserial_conv2d_reference, bitserial_linear_reference
from repro.core.kernel_plan import compile_conv_plan, compile_linear_plan
from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.lut import LookupTable, build_lut
from repro.core.pipeline import OPT_LEVELS
from repro.core.program import Executor, NetworkProgram, compile_network
from repro.core.weight_pool import WeightPool
from repro.nn import DataLoader, Module
from repro.nn.training.trainer import evaluate_model
from repro.quantization.activation import ActivationQuantizer
from repro.quantization.calibration import CalibrationMethod
from repro.quantization.quantizer import QuantParams, fake_quantize, quantize


@dataclass
class EngineConfig:
    """Configuration of the bit-serial inference engine."""

    activation_bitwidth: int = 8
    lut_bitwidth: Optional[int] = 8
    use_lut: bool = True
    calibration_method: CalibrationMethod = CalibrationMethod.ITERATIVE
    calibration_batches: int = 4
    active_bits: Optional[int] = None  # early termination (MSB-first truncation)
    # Execute through compiled per-layer kernel plans (vectorised
    # gather-accumulate, fused epilogue).  False falls back to the original
    # Python tap-loop kernels — kept for A/B benchmarking and as a debugging
    # oracle.  With a full-precision LUT the raw kernels are bit-exact; the
    # engine outputs differ only by the fused epilogue's float association
    # (alpha*acc + beta vs scale*(raw - z*sum_w) + bias), ~1e-10 relative.
    use_kernel_plans: bool = True
    # Execute predict/evaluate through the whole-network compiled program
    # (lower → optimize → batched executor).  False re-enters the per-layer
    # runtime-install path on every batch — PR 1's engine, kept as the oracle
    # and as the baseline of the graph throughput benchmark.
    use_graph: bool = True
    # Apply the graph-level passes (BatchNorm folding, requantize fusion).
    # False compiles the canonical op stream, which executes the exact same
    # plans in the exact same float association as the per-layer path.
    graph_optimize: bool = True
    # Pipeline optimization level (one of repro.core.pipeline.OPT_LEVELS,
    # "O0".."O3").  None derives the level from ``graph_optimize`` ("O2" /
    # "O0", the pre-pass-manager behaviour); an explicit level wins over
    # ``graph_optimize``.  "O3" additionally autotunes kernel variants and
    # tile/shard choices at compile time (bitwise-identical outputs).
    opt_level: Optional[str] = None

    def __post_init__(self) -> None:
        if not 1 <= self.activation_bitwidth <= 8:
            raise ValueError(
                f"activation_bitwidth must be in [1, 8], got {self.activation_bitwidth}"
            )
        if self.lut_bitwidth is not None and not 2 <= self.lut_bitwidth <= 16:
            raise ValueError(f"lut_bitwidth must be in [2, 16], got {self.lut_bitwidth}")
        if self.active_bits is not None and not 1 <= self.active_bits <= self.activation_bitwidth:
            raise ValueError("active_bits must be in [1, activation_bitwidth]")
        if self.opt_level is not None and self.opt_level not in OPT_LEVELS:
            raise ValueError(
                f"unknown optimization level {self.opt_level!r}; valid levels: "
                f"{', '.join(OPT_LEVELS)}"
            )


class _CalibrationRuntime:
    """Runtime that records layer inputs and falls back to the float forward."""

    def __init__(self, quantizers: Dict[int, ActivationQuantizer]):
        self.quantizers = quantizers

    def run(self, layer, x: np.ndarray) -> np.ndarray:
        self.quantizers[id(layer)](x)  # observe
        return _float_forward(layer, x)


class _BitSerialRuntime:
    """Runtime that executes a weight-pool layer with the bit-serial LUT kernel."""

    def __init__(self, engine: "BitSerialInferenceEngine"):
        self.engine = engine

    def run(self, layer, x: np.ndarray) -> np.ndarray:
        config = self.engine.config
        params = self.engine.activation_params[id(layer)]
        lut = self.engine.lut

        if not config.use_lut:
            # "No-LUT" reference: fake-quantized activations, float pool weights.
            return _float_forward(layer, fake_quantize(x, params))

        q_x = quantize(x, params)
        zero_point = params.zero_point
        if isinstance(layer, WeightPoolConv2d):
            # The expected-channel check is resolved once per layer at compile
            # time (`_pad_for`); the hot path only pads when it must.
            pad = self.engine._pad_for(layer)
            if pad:
                q_x = np.pad(
                    q_x,
                    ((0, 0), (0, pad), (0, 0), (0, 0)),
                    mode="constant",
                    constant_values=zero_point,
                )
            if config.use_kernel_plans:
                plan = self.engine._plan_for(layer)
                return plan(q_x, active_bits=config.active_bits)
            raw = bitserial_conv2d_reference(
                q_x,
                layer.indices,
                lut,
                stride=layer.stride,
                padding=layer.padding,
                act_bitwidth=config.activation_bitwidth,
                active_bits=config.active_bits,
                pad_value=zero_point,
            )
            # Zero-point correction: dot(a, w) = scale * (dot(q, w) - z * sum(w)).
            w_sums = self.engine._layer_w_sums(layer)
            out = params.scale * (raw - zero_point * w_sums.reshape(1, -1, 1, 1))
            if layer.bias is not None:
                out = out + layer.bias.data.reshape(1, -1, 1, 1)
            return out
        if isinstance(layer, WeightPoolLinear):
            if config.use_kernel_plans:
                plan = self.engine._plan_for(layer)
                return plan(q_x, active_bits=config.active_bits)
            raw = bitserial_linear_reference(
                q_x,
                layer.indices,
                lut,
                act_bitwidth=config.activation_bitwidth,
                active_bits=config.active_bits,
            )
            w_sums = self.engine._layer_w_sums(layer)
            out = params.scale * (raw - zero_point * w_sums.reshape(1, -1))
            if layer.bias is not None:
                out = out + layer.bias.data
            return out
        raise TypeError(f"unsupported weight-pool layer type {type(layer).__name__}")


def _float_forward(layer, x: np.ndarray) -> np.ndarray:
    """Run the layer's ordinary pool-weight forward without re-entering the runtime."""
    runtime = layer.runtime
    layer.runtime = None
    try:
        return layer.forward(x)
    finally:
        layer.runtime = runtime


def _channel_padding(layer: WeightPoolConv2d) -> int:
    """Zero-point channels to pad so activations match the layer's indices.

    Static per layer (indices vs. declared ``in_channels``), so the engine
    computes it once at compile time instead of re-deriving — and previously
    re-checking — it on every batch.
    """
    expected = layer.indices.shape[1] * layer.pool.group_size
    pad = expected - layer.in_channels
    if pad < 0:
        raise ValueError("layer declares more channels than its indices cover")
    return pad


class BitSerialInferenceEngine:
    """Calibrates and executes a compressed model with the bit-serial LUT kernel."""

    def __init__(
        self,
        model: Module,
        pool: WeightPool,
        config: Optional[EngineConfig] = None,
    ):
        self.model = model
        self.pool = pool
        self.config = config or EngineConfig()
        self.layers = [
            module
            for module in model.modules()
            if isinstance(module, (WeightPoolConv2d, WeightPoolLinear))
        ]
        if not self.layers:
            raise ValueError("model contains no weight-pool layers; compress it first")
        self.quantizers: Dict[int, ActivationQuantizer] = {}
        self.activation_params: Dict[int, QuantParams] = {}
        self.lut: Optional[LookupTable] = None
        self._calibrated = False
        # Per-layer compiled state, built lazily on first use and invalidated
        # whenever the LUT or the activation parameters change.
        self._plans: Dict[int, object] = {}
        self._w_sums: Dict[int, np.ndarray] = {}
        self._pads: Dict[int, int] = {}
        # Whole-network compiled state: (C, H, W) recorded during calibration,
        # executors cached per (backend, optimize, active_bits).
        self.input_shape: Optional[Tuple[int, ...]] = None
        self._executors: Dict[tuple, Executor] = {}
        self._graph_unsupported = False

    # -- lifecycle ---------------------------------------------------------------
    def calibrate(self, loader: DataLoader, batches: Optional[int] = None) -> None:
        """Observe weight-pool layer inputs over a few batches of data."""
        batches = batches if batches is not None else self.config.calibration_batches
        self.quantizers = {
            id(layer): ActivationQuantizer(
                bitwidth=self.config.activation_bitwidth,
                method=self.config.calibration_method,
            )
            for layer in self.layers
        }
        runtime = _CalibrationRuntime(self.quantizers)
        self.model.eval()
        self._install(runtime)
        self.input_shape = None  # re-calibration re-records the data shape
        try:
            for batch_index, (inputs, _) in enumerate(loader):
                if batch_index >= batches:
                    break
                if self.input_shape is None:
                    self.input_shape = tuple(inputs.shape[1:])
                self.model(inputs)
        finally:
            self._uninstall()
        self._freeze_quantizers()
        self._build_lut()
        self._calibrated = True

    def _freeze_quantizers(self) -> None:
        self.activation_params = {}
        for layer in self.layers:
            quantizer = self.quantizers[id(layer)]
            params = quantizer.freeze(self.config.activation_bitwidth)
            self.activation_params[id(layer)] = params

    def _build_lut(self) -> None:
        lut = build_lut(self.pool)
        if self.config.lut_bitwidth is not None:
            lut = lut.quantize(self.config.lut_bitwidth)
        self.lut = lut
        self._invalidate_compiled()

    def set_activation_bitwidth(self, bitwidth: int) -> None:
        """Re-freeze activation quantizers at a new bitwidth (no re-calibration needed).

        A configured ``active_bits`` early-termination setting is preserved
        when it still fits the new bitwidth; when it does not, it is reset to
        ``None`` (process every bit) with a warning rather than silently.
        """
        if not self.quantizers:
            raise RuntimeError("calibrate() must be called before changing the bitwidth")
        active_bits = self.config.active_bits
        if active_bits is not None and active_bits > bitwidth:
            warnings.warn(
                f"active_bits={active_bits} does not fit the new activation "
                f"bitwidth {bitwidth}; resetting early termination to None",
                stacklevel=2,
            )
            active_bits = None
        self.config = replace(
            self.config, activation_bitwidth=bitwidth, active_bits=active_bits
        )
        for layer in self.layers:
            self.activation_params[id(layer)] = self.quantizers[id(layer)].set_bitwidth(bitwidth)
        self._invalidate_compiled()

    def set_lut_bitwidth(self, bitwidth: Optional[int]) -> None:
        """Change the LUT storage bitwidth and rebuild the table."""
        self.config = replace(self.config, lut_bitwidth=bitwidth)
        self._build_lut()

    # -- compiled per-layer state ---------------------------------------------
    def _invalidate_compiled(self) -> None:
        """Drop cached kernel plans, executors and sums (LUT/params changed)."""
        self._plans.clear()
        self._w_sums.clear()
        self._pads.clear()
        self._executors.clear()

    def _pad_for(self, layer: WeightPoolConv2d) -> int:
        """Compile-time channel padding for ``layer`` (0 for most layers)."""
        key = id(layer)
        pad = self._pads.get(key)
        if pad is None:
            pad = _channel_padding(layer)
            self._pads[key] = pad
        return pad

    def _plan_for(self, layer):
        """The compiled kernel plan for ``layer``, building it on first use.

        Plans snapshot the layer's indices, the LUT, and the frozen activation
        parameters; :meth:`_invalidate_compiled` must run when any of those
        change (``set_activation_bitwidth`` / ``set_lut_bitwidth`` do).
        """
        key = id(layer)
        plan = self._plans.get(key)
        if plan is None:
            params = self.activation_params[key]
            bias = layer.bias.data if layer.bias is not None else None
            if isinstance(layer, WeightPoolConv2d):
                plan = compile_conv_plan(
                    layer.indices,
                    self.lut,
                    stride=layer.stride,
                    padding=layer.padding,
                    act_bitwidth=self.config.activation_bitwidth,
                    pad_value=params.zero_point,
                    scale=params.scale,
                    zero_point=params.zero_point,
                    bias=bias,
                )
            else:
                plan = compile_linear_plan(
                    layer.indices,
                    self.lut,
                    act_bitwidth=self.config.activation_bitwidth,
                    scale=params.scale,
                    zero_point=params.zero_point,
                    bias=bias,
                )
            self._plans[key] = plan
        return plan

    def _layer_w_sums(self, layer) -> np.ndarray:
        """Per-filter pool-vector sums for the zero-point correction, cached."""
        key = id(layer)
        w_sums = self._w_sums.get(key)
        if w_sums is None:
            gathered = self.lut.pool_vector_sums()[layer.indices]
            w_sums = gathered.reshape(layer.indices.shape[0], -1).sum(axis=1)
            self._w_sums[key] = w_sums
        return w_sums

    # -- whole-network compilation ---------------------------------------------
    def compile(
        self,
        optimize: Optional[bool] = None,
        backend: Optional[str] = None,
        input_shape: Optional[Tuple[int, ...]] = None,
        level: Optional[str] = None,
    ) -> NetworkProgram:
        """Lower the calibrated model into a :class:`NetworkProgram`.

        Builds (and caches) the matching graph :class:`Executor`; ``predict``
        and ``evaluate`` delegate to it.  The pipeline optimization ``level``
        (``O0``–``O3``) defaults to the engine config (``opt_level`` when
        set, else ``graph_optimize`` → ``O2``/``O0``); an explicit boolean
        ``optimize`` keeps its legacy meaning (``O2``/``O0``).  ``backend``
        defaults to plan vs reference kernels per ``use_kernel_plans``;
        ``input_shape`` to the shape recorded during calibration.  Unknown
        level names raise :class:`ValueError` listing the valid choices.
        """
        executor = self._executor(
            optimize=optimize, backend=backend, input_shape=input_shape, level=level
        )
        return executor.program

    def export(
        self,
        path,
        optimize: Optional[bool] = None,
        input_shape: Optional[Tuple[int, ...]] = None,
        level: Optional[str] = None,
    ) -> NetworkProgram:
        """Compile the network and persist it as a program artifact.

        Convenience wrapper around :meth:`compile` +
        :func:`repro.core.export.save_program`: the written ``.npz`` is the
        deployment artifact a :class:`repro.serve.ModelRepository` serves
        (``repository.publish(engine.compile(), name)`` is the equivalent
        two-step spelling).  The artifact header carries the pipeline level
        and per-pass reports.  Returns the compiled program.
        """
        from repro.core.export import save_program  # engine is imported by export

        program = self.compile(optimize=optimize, input_shape=input_shape, level=level)
        save_program(program, path)
        return program

    def _resolve_level(
        self, optimize: Optional[bool], level: Optional[str]
    ) -> str:
        """The pipeline level for a compile request (explicit level wins,
        then the legacy ``optimize`` boolean, then the engine config)."""
        if level is not None:
            return level
        if optimize is not None:
            return "O2" if optimize else "O0"
        if self.config.opt_level is not None:
            return self.config.opt_level
        return "O2" if self.config.graph_optimize else "O0"

    def _executor(
        self,
        optimize: Optional[bool] = None,
        backend: Optional[str] = None,
        input_shape: Optional[Tuple[int, ...]] = None,
        level: Optional[str] = None,
    ) -> Executor:
        if not self._calibrated:
            raise RuntimeError("calibrate() must be called before compiling the network")
        level = self._resolve_level(optimize, level)
        if backend is None:
            # Defaulted backends route O4 programs to the native codegen
            # backend; the executor degrades back to ``plan`` (surfacing a
            # ``fallback_reason``) on hosts that cannot build it.  An explicit
            # ``backend="plan"`` stays the pure plan oracle.
            if self.config.use_kernel_plans:
                backend = "native" if level == "O4" else "plan"
            else:
                backend = "reference"
        input_shape = tuple(input_shape or self.input_shape or ())
        if len(input_shape) != 3:
            raise RuntimeError(
                "input shape unknown; calibrate with (N, C, H, W) batches or "
                "pass input_shape explicitly"
            )
        key = (backend, level, input_shape, self.config.active_bits)
        executor = self._executors.get(key)
        if executor is None:
            program = compile_network(
                self.model,
                input_shape,
                lut=self.lut,
                activation_params=self.activation_params,
                act_bitwidth=self.config.activation_bitwidth,
                level=level,
            )
            executor = Executor(program, backend=backend, active_bits=self.config.active_bits)
            self._executors[key] = executor
        return executor

    def _graph_executor_or_none(self, inputs: Optional[np.ndarray] = None) -> Optional[Executor]:
        """The executor for the current config, or ``None`` for legacy-only modes."""
        if not self.config.use_graph or not self.config.use_lut or self._graph_unsupported:
            return None
        input_shape = None
        if inputs is not None and np.ndim(inputs) == 4:
            # Program execution is spatial-size-agnostic (plans, pools and
            # epilogues all adapt per batch), so varying H/W reuses the
            # calibration-shape executor instead of recompiling per shape;
            # only a channel-count change forces a fresh compile.
            channels = int(np.shape(inputs)[1])
            if self.input_shape is None or len(self.input_shape) != 3 or self.input_shape[0] != channels:
                input_shape = tuple(np.shape(inputs)[1:])
        if input_shape is None and (self.input_shape is None or len(self.input_shape) != 3):
            # Lowering needs a (C, H, W) input; models calibrated on other
            # shapes (e.g. a linear-only model fed (N, F) batches) keep
            # running through the per-layer runtime.
            return None
        try:
            return self._executor(input_shape=input_shape)
        except NotImplementedError:
            # Model without lowering hooks: fall back to the per-layer runtime.
            self._graph_unsupported = True
            return None

    # -- execution ---------------------------------------------------------------
    def _install(self, runtime) -> None:
        for layer in self.layers:
            layer.runtime = runtime

    def _uninstall(self) -> None:
        for layer in self.layers:
            layer.runtime = None

    def __enter__(self) -> "BitSerialInferenceEngine":
        if not self._calibrated:
            raise RuntimeError("calibrate() must be called before entering the engine")
        self.model.eval()
        self._install(_BitSerialRuntime(self))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._uninstall()

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Run one batch through the model in bit-serial mode.

        Executes the compiled network program by default; the legacy
        per-layer runtime path runs for ``use_graph=False``, ``use_lut=False``
        (the No-LUT mode has no bit-serial ops to compile) and models without
        lowering hooks.
        """
        executor = self._graph_executor_or_none(inputs)
        if executor is not None:
            return executor.run(inputs)
        with self:
            return self.model(inputs)

    def evaluate(self, loader: DataLoader) -> float:
        """Top-1 accuracy of the bit-serial execution over a loader."""
        executor = self._graph_executor_or_none()
        if executor is not None:
            return executor.evaluate(loader)
        with self:
            return evaluate_model(self.model, loader)

    def evaluate_float(self, loader: DataLoader) -> float:
        """Accuracy of the plain (float) weight-pool model, for comparison.

        Restores whatever runtimes were installed before the call (so it can
        be used inside an active engine context, and an exception mid-way
        cannot leave the model half-uninstalled).
        """
        runtimes = [layer.runtime for layer in self.layers]
        self._uninstall()
        try:
            return evaluate_model(self.model, loader)
        finally:
            for layer, runtime in zip(self.layers, runtimes):
                layer.runtime = runtime
