"""Whole-network bit-serial inference engine.

The engine reproduces what the paper's deployment flow does on the host and
the microcontroller:

1. **Calibration** — run a few batches through the compressed model in float
   mode while observing the input of every weight-pool layer.
2. **Freezing** — derive per-layer activation quantization parameters at the
   requested activation bitwidth (iterative range search by default, §5.3.3).
3. **Bit-serial execution** — install a runtime on every weight-pool layer
   that quantizes its input, runs the LUT-based bit-serial kernel
   (:mod:`repro.core.bitserial`), corrects for the activation zero point using
   the LUT's all-ones entry, and rescales back to the real domain.  The rest
   of the network (batch norm, activations, pooling, classifier) runs in
   float, matching the paper's PyTorch accuracy simulation.

The engine supports three execution modes:

* ``use_lut=True`` (default) — full bit-serial LUT simulation (optionally with
  a quantized LUT, Table 5).
* ``use_lut=False`` — "No-LUT" mode: activations are fake-quantized and the
  reconstructed pool weights are used directly (the Table 5 reference column).
* ``float`` (no engine installed) — plain weight-pool accuracy (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.bitserial import bitserial_conv2d_reference, bitserial_linear_reference
from repro.core.kernel_plan import compile_conv_plan, compile_linear_plan
from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.lut import LookupTable, build_lut
from repro.core.weight_pool import WeightPool
from repro.nn import DataLoader, Module
from repro.nn.training.trainer import evaluate_model
from repro.quantization.activation import ActivationQuantizer
from repro.quantization.calibration import CalibrationMethod
from repro.quantization.quantizer import QuantParams, fake_quantize, quantize


@dataclass
class EngineConfig:
    """Configuration of the bit-serial inference engine."""

    activation_bitwidth: int = 8
    lut_bitwidth: Optional[int] = 8
    use_lut: bool = True
    calibration_method: CalibrationMethod = CalibrationMethod.ITERATIVE
    calibration_batches: int = 4
    active_bits: Optional[int] = None  # early termination (MSB-first truncation)
    # Execute through compiled per-layer kernel plans (vectorised
    # gather-accumulate, fused epilogue).  False falls back to the original
    # Python tap-loop kernels — kept for A/B benchmarking and as a debugging
    # oracle.  With a full-precision LUT the raw kernels are bit-exact; the
    # engine outputs differ only by the fused epilogue's float association
    # (alpha*acc + beta vs scale*(raw - z*sum_w) + bias), ~1e-10 relative.
    use_kernel_plans: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.activation_bitwidth <= 8:
            raise ValueError(
                f"activation_bitwidth must be in [1, 8], got {self.activation_bitwidth}"
            )
        if self.lut_bitwidth is not None and not 2 <= self.lut_bitwidth <= 16:
            raise ValueError(f"lut_bitwidth must be in [2, 16], got {self.lut_bitwidth}")
        if self.active_bits is not None and not 1 <= self.active_bits <= self.activation_bitwidth:
            raise ValueError("active_bits must be in [1, activation_bitwidth]")


class _CalibrationRuntime:
    """Runtime that records layer inputs and falls back to the float forward."""

    def __init__(self, quantizers: Dict[int, ActivationQuantizer]):
        self.quantizers = quantizers

    def run(self, layer, x: np.ndarray) -> np.ndarray:
        self.quantizers[id(layer)](x)  # observe
        return _float_forward(layer, x)


class _BitSerialRuntime:
    """Runtime that executes a weight-pool layer with the bit-serial LUT kernel."""

    def __init__(self, engine: "BitSerialInferenceEngine"):
        self.engine = engine

    def run(self, layer, x: np.ndarray) -> np.ndarray:
        config = self.engine.config
        params = self.engine.activation_params[id(layer)]
        lut = self.engine.lut

        if not config.use_lut:
            # "No-LUT" reference: fake-quantized activations, float pool weights.
            return _float_forward(layer, fake_quantize(x, params))

        q_x = quantize(x, params)
        zero_point = params.zero_point
        if isinstance(layer, WeightPoolConv2d):
            q_x = _pad_channels(q_x, layer, zero_point)
            if config.use_kernel_plans:
                plan = self.engine._plan_for(layer)
                return plan(q_x, active_bits=config.active_bits)
            raw = bitserial_conv2d_reference(
                q_x,
                layer.indices,
                lut,
                stride=layer.stride,
                padding=layer.padding,
                act_bitwidth=config.activation_bitwidth,
                active_bits=config.active_bits,
                pad_value=zero_point,
            )
            # Zero-point correction: dot(a, w) = scale * (dot(q, w) - z * sum(w)).
            w_sums = self.engine._layer_w_sums(layer)
            out = params.scale * (raw - zero_point * w_sums.reshape(1, -1, 1, 1))
            if layer.bias is not None:
                out = out + layer.bias.data.reshape(1, -1, 1, 1)
            return out
        if isinstance(layer, WeightPoolLinear):
            if config.use_kernel_plans:
                plan = self.engine._plan_for(layer)
                return plan(q_x, active_bits=config.active_bits)
            raw = bitserial_linear_reference(
                q_x,
                layer.indices,
                lut,
                act_bitwidth=config.activation_bitwidth,
                active_bits=config.active_bits,
            )
            w_sums = self.engine._layer_w_sums(layer)
            out = params.scale * (raw - zero_point * w_sums.reshape(1, -1))
            if layer.bias is not None:
                out = out + layer.bias.data
            return out
        raise TypeError(f"unsupported weight-pool layer type {type(layer).__name__}")


def _float_forward(layer, x: np.ndarray) -> np.ndarray:
    """Run the layer's ordinary pool-weight forward without re-entering the runtime."""
    runtime = layer.runtime
    layer.runtime = None
    try:
        return layer.forward(x)
    finally:
        layer.runtime = runtime


def _pad_channels(q_x: np.ndarray, layer: WeightPoolConv2d, zero_point: int) -> np.ndarray:
    """Pad activation channels with the zero point when the layer pads its weights."""
    group_size = layer.pool.group_size
    channels = q_x.shape[1]
    expected = layer.indices.shape[1] * group_size
    if channels == expected:
        return q_x
    pad = expected - channels
    if pad < 0:
        raise ValueError("activation has more channels than the layer expects")
    return np.pad(
        q_x,
        ((0, 0), (0, pad), (0, 0), (0, 0)),
        mode="constant",
        constant_values=zero_point,
    )


class BitSerialInferenceEngine:
    """Calibrates and executes a compressed model with the bit-serial LUT kernel."""

    def __init__(
        self,
        model: Module,
        pool: WeightPool,
        config: Optional[EngineConfig] = None,
    ):
        self.model = model
        self.pool = pool
        self.config = config or EngineConfig()
        self.layers = [
            module
            for module in model.modules()
            if isinstance(module, (WeightPoolConv2d, WeightPoolLinear))
        ]
        if not self.layers:
            raise ValueError("model contains no weight-pool layers; compress it first")
        self.quantizers: Dict[int, ActivationQuantizer] = {}
        self.activation_params: Dict[int, QuantParams] = {}
        self.lut: Optional[LookupTable] = None
        self._calibrated = False
        # Per-layer compiled state, built lazily on first use and invalidated
        # whenever the LUT or the activation parameters change.
        self._plans: Dict[int, object] = {}
        self._w_sums: Dict[int, np.ndarray] = {}

    # -- lifecycle ---------------------------------------------------------------
    def calibrate(self, loader: DataLoader, batches: Optional[int] = None) -> None:
        """Observe weight-pool layer inputs over a few batches of data."""
        batches = batches if batches is not None else self.config.calibration_batches
        self.quantizers = {
            id(layer): ActivationQuantizer(
                bitwidth=self.config.activation_bitwidth,
                method=self.config.calibration_method,
            )
            for layer in self.layers
        }
        runtime = _CalibrationRuntime(self.quantizers)
        self.model.eval()
        self._install(runtime)
        try:
            for batch_index, (inputs, _) in enumerate(loader):
                if batch_index >= batches:
                    break
                self.model(inputs)
        finally:
            self._uninstall()
        self._freeze_quantizers()
        self._build_lut()
        self._calibrated = True

    def _freeze_quantizers(self) -> None:
        self.activation_params = {}
        for layer in self.layers:
            quantizer = self.quantizers[id(layer)]
            params = quantizer.freeze(self.config.activation_bitwidth)
            self.activation_params[id(layer)] = params

    def _build_lut(self) -> None:
        lut = build_lut(self.pool)
        if self.config.lut_bitwidth is not None:
            lut = lut.quantize(self.config.lut_bitwidth)
        self.lut = lut
        self._invalidate_compiled()

    def set_activation_bitwidth(self, bitwidth: int) -> None:
        """Re-freeze activation quantizers at a new bitwidth (no re-calibration needed)."""
        if not self.quantizers:
            raise RuntimeError("calibrate() must be called before changing the bitwidth")
        self.config = replace(self.config, activation_bitwidth=bitwidth, active_bits=None)
        for layer in self.layers:
            self.activation_params[id(layer)] = self.quantizers[id(layer)].set_bitwidth(bitwidth)
        self._invalidate_compiled()

    def set_lut_bitwidth(self, bitwidth: Optional[int]) -> None:
        """Change the LUT storage bitwidth and rebuild the table."""
        self.config = replace(self.config, lut_bitwidth=bitwidth)
        self._build_lut()

    # -- compiled per-layer state ---------------------------------------------
    def _invalidate_compiled(self) -> None:
        """Drop cached kernel plans and zero-point sums (LUT/params changed)."""
        self._plans.clear()
        self._w_sums.clear()

    def _plan_for(self, layer):
        """The compiled kernel plan for ``layer``, building it on first use.

        Plans snapshot the layer's indices, the LUT, and the frozen activation
        parameters; :meth:`_invalidate_compiled` must run when any of those
        change (``set_activation_bitwidth`` / ``set_lut_bitwidth`` do).
        """
        key = id(layer)
        plan = self._plans.get(key)
        if plan is None:
            params = self.activation_params[key]
            bias = layer.bias.data if layer.bias is not None else None
            if isinstance(layer, WeightPoolConv2d):
                plan = compile_conv_plan(
                    layer.indices,
                    self.lut,
                    stride=layer.stride,
                    padding=layer.padding,
                    act_bitwidth=self.config.activation_bitwidth,
                    pad_value=params.zero_point,
                    scale=params.scale,
                    zero_point=params.zero_point,
                    bias=bias,
                )
            else:
                plan = compile_linear_plan(
                    layer.indices,
                    self.lut,
                    act_bitwidth=self.config.activation_bitwidth,
                    scale=params.scale,
                    zero_point=params.zero_point,
                    bias=bias,
                )
            self._plans[key] = plan
        return plan

    def _layer_w_sums(self, layer) -> np.ndarray:
        """Per-filter pool-vector sums for the zero-point correction, cached."""
        key = id(layer)
        w_sums = self._w_sums.get(key)
        if w_sums is None:
            gathered = self.lut.pool_vector_sums()[layer.indices]
            w_sums = gathered.reshape(layer.indices.shape[0], -1).sum(axis=1)
            self._w_sums[key] = w_sums
        return w_sums

    # -- execution ---------------------------------------------------------------
    def _install(self, runtime) -> None:
        for layer in self.layers:
            layer.runtime = runtime

    def _uninstall(self) -> None:
        for layer in self.layers:
            layer.runtime = None

    def __enter__(self) -> "BitSerialInferenceEngine":
        if not self._calibrated:
            raise RuntimeError("calibrate() must be called before entering the engine")
        self.model.eval()
        self._install(_BitSerialRuntime(self))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._uninstall()

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Run one batch through the model in bit-serial mode."""
        with self:
            return self.model(inputs)

    def evaluate(self, loader: DataLoader) -> float:
        """Top-1 accuracy of the bit-serial execution over a loader."""
        with self:
            return evaluate_model(self.model, loader)

    def evaluate_float(self, loader: DataLoader) -> float:
        """Accuracy of the plain (float) weight-pool model, for comparison."""
        self._uninstall()
        return evaluate_model(self.model, loader)
