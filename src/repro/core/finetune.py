"""Index-reassignment fine-tuning of weight-pool models (paper Figure 2).

After the initial projection onto the pool, the paper retrains the network
"to fine-tune the weight indices assignment (with a fixed weight pool) and
fully connected layer's weights.  The backward pass updates the network
weights and the forward pass reassigns indices to the nearest weight pool
vector."  :func:`finetune_compressed_model` implements exactly that loop on
top of :class:`repro.nn.Trainer`; the reassignment itself happens inside the
weight-pool layers' ``forward``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.nn import DataLoader, Module, SGD, TrainConfig, Trainer
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim.scheduler import CosineAnnealingLR


def weight_pool_layers(model: Module) -> List[Module]:
    """All weight-pool layers in a model."""
    return [
        module
        for module in model.modules()
        if isinstance(module, (WeightPoolConv2d, WeightPoolLinear))
    ]


def freeze_assignments(model: Module) -> None:
    """Stop reassigning indices on forward (deployment state)."""
    for layer in weight_pool_layers(model):
        layer.reassign_on_forward = False


def unfreeze_assignments(model: Module) -> None:
    """Resume reassigning indices on forward (fine-tuning state)."""
    for layer in weight_pool_layers(model):
        layer.reassign_on_forward = True


def finetune_compressed_model(
    model: Module,
    train_loader: DataLoader,
    epochs: int = 5,
    lr: float = 0.01,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    val_loader: Optional[DataLoader] = None,
    label_smoothing: float = 0.0,
    use_cosine_schedule: bool = True,
):
    """Fine-tune a compressed model with the paper's reassignment loop.

    Returns the :class:`~repro.nn.training.trainer.Trainer` (whose ``history``
    carries per-epoch statistics).  On return the model is left in eval mode
    with assignments frozen, ready for deployment/bit-serial execution.
    """
    if not weight_pool_layers(model):
        raise ValueError("model contains no weight-pool layers; compress it first")
    unfreeze_assignments(model)
    optimizer = SGD(
        model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    scheduler = CosineAnnealingLR(optimizer, t_max=max(epochs, 1)) if use_cosine_schedule else None
    trainer = Trainer(
        model,
        optimizer,
        loss_fn=CrossEntropyLoss(label_smoothing=label_smoothing),
        scheduler=scheduler,
    )
    trainer.fit(train_loader, TrainConfig(epochs=epochs), val_loader=val_loader)

    # Deployment state: one final reassignment from the fine-tuned latent
    # weights, then freeze.
    for layer in weight_pool_layers(model):
        layer.reassign()
    freeze_assignments(model)
    model.eval()
    return trainer
