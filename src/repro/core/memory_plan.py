"""Ahead-of-time execution plans: liveness → arena offsets → fused steps.

The pooled :class:`~repro.core.program.Executor` pays three per-batch costs
the compiler can eliminate: every op walks the refcounted buffer pool, every
piece of elementwise glue (quantize/batchnorm/activation/pool/add) is its own
Python dispatch with its own temporaries, and nothing about the memory the
program will touch is known before the first batch runs.  This module moves
all of that to compile time:

* **Buffer specs** — per-buffer *(per-sample shape, dtype)* inferred
  statically from the typed IR, so every activation's byte size is known
  before any data flows.
* **Elementwise fusion** — maximal runs of glue steps whose intermediate
  buffers have exactly one consumer collapse into one compiled step; the
  intermediates become reusable scratch, and the step loop shrinks by the
  chain length.
* **Liveness → static arena** — a linear-scan over buffer lifetimes assigns
  every surviving intermediate a fixed byte offset in one preallocated
  arena, with safe aliasing: reshape views share their base's storage, and
  steps whose write provably cannot race their read (kernel plans and
  scratch-mediated casts consume the input before the output is first
  written; same-spec ufuncs write exactly in place) reuse a dying input's
  slot.  Steady-state execution allocates nothing.
* **Shard runtimes** — a :class:`ShardRuntime` bundles one arena with the
  scratch dictionaries of every kernel-plan step; the executor owns a pool
  of them and splits large batches across GIL-releasing worker threads,
  each shard writing its contiguous slice of the preallocated output
  (deterministic assembly, per-sample-exact ops).

The plan executes the **same ufunc sequence in the same order** as the
pooled path, only into preallocated memory — outputs are bitwise identical,
which `tests/core/test_memory_plan.py` enforces against both the pooled
executor and the reference backend.  Programs the planner cannot type (an
unbound backend, an op kind it does not know) raise
:class:`PlanUnsupported` and the executor keeps the buffer pool as the
fallback, which remains the path for unoptimized/reference programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitserial import active_bit_positions
from repro.nn import functional as F

#: Arena slots are aligned to cache lines.
_ALIGN = 64

#: Elementwise / cheap glue kinds eligible for chain fusion.  Kernel steps
#: (bit-serial plans, float conv/linear) stay as their own steps — they are
#: already fused internally and dominate runtime.
_GLUE_KINDS = frozenset(
    {"quantize", "pad_channels", "batchnorm", "activation", "pool", "flatten", "add"}
)


class PlanUnsupported(RuntimeError):
    """The program cannot be planned ahead of time; use the pooled executor."""


@dataclass(frozen=True)
class BufferSpec:
    """Static description of one IR buffer: per-sample shape and dtype."""

    shape: Tuple[int, ...]
    dtype: np.dtype

    def tile_nbytes(self, tile: int) -> int:
        return int(tile * int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize)


@dataclass
class ArenaSlot:
    """One storage interval of the arena: fixed offset, full-tile size."""

    offset: int
    nbytes: int
    first_def: int
    last_use: int
    reused_from: Optional[int] = None  # storage whose slot this one took over


@dataclass
class PlanStep:
    """One compiled step of an execution plan.

    ``fn(args, out, ctx)`` executes the step: ``args`` are the input arrays,
    ``out`` is the preallocated output (``None`` for view/heap placements),
    ``ctx`` the executing :class:`ShardRuntime`.  ``fused`` lists the IR op
    kinds folded into this step (length > 1 for fused chains).
    """

    fn: Callable[[Sequence[np.ndarray], Optional[np.ndarray], "ShardRuntime"], np.ndarray]
    inputs: Tuple[int, ...]
    output: int
    kind: str
    fused: Tuple[str, ...] = ()
    placement: str = "arena"  # "arena" | "view" | "heap" | "output"
    # In-place aliasing contract: "any" — the input is fully consumed before
    # the output is first written (kernel plans, scratch-mediated casts), so
    # the output may take over any dying input slot that is large enough;
    # "exact" — a direct ufunc writes element-aligned in place, so only a
    # dying input with the identical BufferSpec qualifies; "none" — never.
    inplace_mode: str = "none"
    inplace_inputs: Tuple[int, ...] = ()


@dataclass
class ExecutionPlan:
    """An ahead-of-time compiled schedule + memory layout for one program."""

    steps: List[PlanStep]
    tile: int
    arena_bytes: int
    slots: Dict[int, ArenaSlot]  # keyed by *storage* id
    storage: Dict[int, int]  # buffer id -> storage id (views share storage)
    specs: Dict[int, BufferSpec]
    input_id: int
    output_id: int
    out_shape: Tuple[int, ...]
    out_dtype: np.dtype
    counters: Dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Buffer specs: static shape/dtype inference over the bound schedule
# ---------------------------------------------------------------------------
def _quant_dtype(params) -> np.dtype:
    return np.dtype(np.uint8 if params.bitwidth <= 8 else np.uint16)


def _plan_out_dtype(plan) -> np.dtype:
    conv_plan = getattr(plan, "conv_plan", plan)
    if conv_plan.requant is not None:
        return np.dtype(conv_plan.requant[2])
    return np.dtype(np.float64)


def infer_buffer_specs(program, steps) -> Dict[int, BufferSpec]:
    """Per-buffer :class:`BufferSpec` for every buffer the schedule touches.

    The program input is typed ``float64`` — the planned executor converts
    incoming batches (data loaders already produce float64).  Dtypes then
    propagate exactly as the pooled step implementations produce them.
    """
    specs: Dict[int, BufferSpec] = {
        program.input_id: BufferSpec(tuple(program.input_shape), np.dtype(np.float64))
    }
    for step in steps:
        op = step.op
        if op is None:
            raise PlanUnsupported(
                f"backend step for buffer b{step.output} carries no IR op; "
                "only the plan backend schedule can be planned"
            )
        out_shape = tuple(op.out_shape)
        if step.plan is not None:
            dtype = _plan_out_dtype(step.plan)
        else:
            kind = op.kind
            in_spec = specs[step.inputs[0]] if step.inputs else None
            if kind == "quantize":
                dtype = _quant_dtype(op.attrs["params"])
            elif kind in ("pad_channels", "batchnorm", "activation", "flatten"):
                dtype = in_spec.dtype
            elif kind == "pool":
                # max pooling keeps the input dtype (integer when fused);
                # avg/global-avg reduce through np.mean, always float64.
                dtype = in_spec.dtype if op.attrs["pool"] == "max" else np.dtype(np.float64)
            elif kind == "add":
                dtype = np.result_type(*(specs[b].dtype for b in step.inputs))
            elif kind in ("conv", "linear"):
                dtype = np.result_type(in_spec.dtype, op.attrs["weight"].dtype)
            else:
                raise PlanUnsupported(f"cannot infer a buffer spec for op kind '{kind}'")
        specs[step.output] = BufferSpec(out_shape, np.dtype(dtype))
    return specs


# ---------------------------------------------------------------------------
# Step compilation: out-aware executors per op kind
# ---------------------------------------------------------------------------
def _compile_stage_fn(op, bound_step, active_bits, stage_key):
    """Compile one op into an out-aware ``fn(args, out, ctx)``.

    Every implementation runs the exact ufunc sequence of the pooled
    executor's `_exec_generic` (or of the kernel plan), only targeting the
    caller-provided ``out`` — outputs are bitwise identical to the pooled
    path.  ``out=None`` falls back to a fresh allocation (view and heap
    placements, chain interiors that are views).
    """
    kind = op.kind
    attrs = op.attrs

    if bound_step is not None and bound_step.plan is not None:
        plan = bound_step.plan
        validated = bound_step.validated

        def fn(args, out, ctx):
            return plan(
                args[0],
                active_bits=active_bits,
                validated=validated,
                out=out,
                scratch=ctx.plan_scratch(stage_key),
            )

        return fn

    if kind == "quantize":
        params = attrs["params"]
        out_dtype = _quant_dtype(params)
        clip_lo = attrs.get("clip_lo", params.qmin)
        clip_hi = attrs.get("clip_hi", params.qmax)
        shape = tuple(op.in_shape)

        def fn(args, out, ctx):
            x = args[0]
            q = ctx.temp((stage_key, "q"), x.shape[0], shape, np.float64)
            np.divide(x, params.scale, out=q)
            np.rint(q, out=q)
            q += params.zero_point
            np.clip(q, clip_lo, clip_hi, out=q)
            if out is None:
                return q.astype(out_dtype)
            np.copyto(out, q, casting="unsafe")
            return out

        return fn

    if kind == "pad_channels":
        value = attrs["value"]
        channels = int(op.in_shape[0])

        def fn(args, out, ctx):
            x = args[0]
            if out is None:
                pad = int(op.attrs["pad"])
                width = ((0, 0), (0, pad)) + ((0, 0),) * (x.ndim - 2)
                return np.pad(x, width, mode="constant", constant_values=value)
            out[:, :channels] = x
            out[:, channels:] = value
            return out

        return fn

    if kind == "batchnorm":
        mean = attrs["mean"].reshape(1, -1, 1, 1)
        inv_std = attrs["inv_std"].reshape(1, -1, 1, 1)
        gamma = attrs["gamma"].reshape(1, -1, 1, 1)
        beta = attrs["beta"].reshape(1, -1, 1, 1)

        def fn(args, out, ctx):
            x = args[0]
            if out is None:
                out = np.empty_like(x)
            # Same association as BatchNorm2d.forward in eval mode.
            np.subtract(x, mean, out=out)
            np.multiply(out, inv_std, out=out)
            np.multiply(out, gamma, out=out)
            np.add(out, beta, out=out)
            return out

        return fn

    if kind == "activation":
        if attrs["fn"] == "relu6":
            def fn(args, out, ctx):
                x = args[0]
                return np.clip(x, 0.0, 6.0, out=out) if out is not None else np.clip(x, 0.0, 6.0)
            return fn

        def fn(args, out, ctx):
            x = args[0]
            if out is None:
                return np.maximum(x, x.dtype.type(0))
            return np.maximum(x, x.dtype.type(0), out=out)

        return fn

    if kind == "pool":
        variant = attrs["pool"]
        if variant == "global_avg":
            def fn(args, out, ctx):
                return args[0].mean(axis=(2, 3), out=out)
            return fn
        k = attrs["kernel"]
        if variant == "max":
            def fn(args, out, ctx):
                x = args[0]
                windows = x.reshape(
                    x.shape[0], x.shape[1], x.shape[2] // k, k, x.shape[3] // k, k
                )
                return windows.max(axis=(3, 5), out=out)
            return fn

        def fn(args, out, ctx):
            x = args[0]
            windows = x.reshape(
                x.shape[0], x.shape[1], x.shape[2] // k, k, x.shape[3] // k, k
            )
            return windows.mean(axis=(3, 5), out=out)

        return fn

    if kind == "flatten":
        def fn(args, out, ctx):
            x = args[0]
            flat = x.reshape(x.shape[0], -1)
            if out is None:
                return flat
            np.copyto(out, flat)  # only when flatten must materialise (output step)
            return out

        return fn

    if kind == "add":
        def fn(args, out, ctx):
            x, y = args
            if out is None:
                return x + y
            return np.add(x, y, out=out)

        return fn

    if kind == "conv":
        weight, bias = attrs["weight"], attrs["bias"]
        stride, padding, groups = attrs["stride"], attrs["padding"], attrs["groups"]

        def fn(args, out, ctx):
            res = F.conv2d_forward(args[0], weight, bias, stride, padding, groups)[0]
            if out is None:
                return res
            np.copyto(out, res)
            return out

        return fn

    if kind == "linear":
        weight, bias = attrs["weight"], attrs["bias"]
        # The transposed *view* (not a contiguous copy): BLAS picks the same
        # kernel as the pooled path's ``x @ weight.T``, keeping the result
        # bitwise identical.
        weight_t = weight.T

        def fn(args, out, ctx):
            x = args[0]
            if out is None:
                return x @ weight_t if bias is None else x @ weight_t + bias
            np.matmul(x, weight_t, out=out)
            if bias is not None:
                np.add(out, bias, out=out)
            return out

        return fn

    raise PlanUnsupported(f"no ahead-of-time executor for op kind '{kind}'")


def _compile_chain_fn(stages, ext_inputs, specs, active_bits, chain_key):
    """Fuse a run of glue steps into one compiled step.

    ``stages`` are ``(op, bound_step)`` pairs in schedule order; their
    single-consumer intermediates live in the runtime's scratch (reused
    across batches), and only the final stage writes the step output.
    """
    compiled = []
    for si, (op, bound_step) in enumerate(stages):
        compiled.append(
            (_compile_stage_fn(op, bound_step, active_bits, (chain_key, si)), op)
        )
    last_index = len(compiled) - 1

    def fn(args, out, ctx):
        env = dict(zip(ext_inputs, args))
        result = None
        for si, (stage_fn, op) in enumerate(compiled):
            sub_args = [env[b] for b in op.inputs]
            if si == last_index:
                o = out
            elif op.kind == "flatten":
                o = None  # view; no scratch needed
            else:
                spec = specs[op.output]
                o = ctx.temp((chain_key, si), sub_args[0].shape[0], spec.shape, spec.dtype)
            result = env[op.output] = stage_fn(sub_args, o, ctx)
        return result

    return fn


# ---------------------------------------------------------------------------
# Fusion grouping
# ---------------------------------------------------------------------------
def _chain_groups(steps, program) -> List[Tuple[int, int]]:
    """Maximal fusable runs ``[(first, last)]`` over the bound schedule.

    A chain extends while the current step's output has *exactly one*
    consumer, that consumer is the next step in the schedule, both steps are
    glue kinds, and the intermediate is not the program output (which has an
    implicit external consumer).
    """
    consumers: Dict[int, List[int]] = {}
    for index, step in enumerate(steps):
        for buf in set(step.inputs):
            consumers.setdefault(buf, []).append(index)
    groups: List[Tuple[int, int]] = []
    i = 0
    while i < len(steps):
        j = i
        if steps[i].op is not None and steps[i].op.kind in _GLUE_KINDS:
            while (
                j + 1 < len(steps)
                and steps[j + 1].op is not None
                and steps[j + 1].op.kind in _GLUE_KINDS
                and steps[j].output != program.output_id
                and consumers.get(steps[j].output, []) == [j + 1]
            ):
                j += 1
        groups.append((i, j))
        i = j + 1
    return groups


# ---------------------------------------------------------------------------
# Liveness and arena allocation
# ---------------------------------------------------------------------------
def _align(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _take_hole(free: List[List[int]], need: int) -> Optional[int]:
    """Best-fit allocation from the free list; splits the chosen hole."""
    best = None
    for hole in free:
        if hole[1] >= need and (best is None or hole[1] < best[1]):
            best = hole
    if best is None:
        return None
    offset = best[0]
    best[0] += need
    best[1] -= need
    if best[1] == 0:
        free.remove(best)
    return offset


def _give_hole(free: List[List[int]], offset: int, size: int) -> None:
    """Return a byte range to the free list, coalescing neighbours."""
    free.append([offset, size])
    free.sort()
    merged: List[List[int]] = []
    for hole in free:
        if merged and merged[-1][0] + merged[-1][1] == hole[0]:
            merged[-1][1] += hole[1]
        else:
            merged.append(hole)
    free[:] = merged


def _plan_arena(plan_steps, specs, storage, input_id, output_id, tile):
    """Linear-scan the schedule assigning fixed arena offsets to storages.

    Returns ``(slots, arena_bytes, peak_live_bytes)``.  ``storage`` maps
    every buffer to its storage id (views share their base's storage); only
    storages produced by arena-placed steps get slots.
    """
    last_use: Dict[int, int] = {}
    for index, step in enumerate(plan_steps):
        for buf in step.inputs:
            sid = storage[buf]
            last_use[sid] = max(last_use.get(sid, -1), index)

    slots: Dict[int, ArenaSlot] = {}
    free: List[List[int]] = []
    arena_end = 0
    live_bytes = 0
    peak_live = 0
    transferred: set = set()

    for index, step in enumerate(plan_steps):
        sid = storage[step.output]
        if step.placement == "arena":
            need = _align(specs[step.output].tile_nbytes(tile))
            taken = None
            if step.inplace_mode != "none":
                for buf in dict.fromkeys(step.inplace_inputs):
                    cand = storage[buf]
                    slot = slots.get(cand)
                    if (
                        slot is None
                        or cand in transferred
                        or last_use.get(cand, -1) != index
                        or slot.nbytes < need
                    ):
                        continue
                    if step.inplace_mode == "exact" and specs[buf] != specs[step.output]:
                        continue
                    taken = cand
                    break
            if taken is not None:
                parent = slots[taken]
                transferred.add(taken)
                slots[sid] = ArenaSlot(
                    offset=parent.offset,
                    nbytes=parent.nbytes,
                    first_def=index,
                    last_use=last_use.get(sid, index),
                    reused_from=taken,
                )
            else:
                offset = _take_hole(free, need)
                if offset is None:
                    offset = arena_end
                    arena_end += need
                slots[sid] = ArenaSlot(
                    offset=offset,
                    nbytes=need,
                    first_def=index,
                    last_use=last_use.get(sid, index),
                )
                live_bytes += need
                peak_live = max(peak_live, live_bytes)
        # Free storages whose last read just happened (and dead outputs).
        dying = {storage[buf] for buf in step.inputs}
        dying.add(sid)
        for cand in dying:
            slot = slots.get(cand)
            if (
                slot is not None
                and cand not in transferred
                and last_use.get(cand, slot.first_def) <= index
            ):
                _give_hole(free, slot.offset, slot.nbytes)
                live_bytes -= slot.nbytes
                transferred.add(cand)  # never free twice
    for sid, slot in slots.items():
        slot.last_use = last_use.get(sid, slot.first_def)
    return slots, arena_end, peak_live


def validate_arena_plan(plan: ExecutionPlan) -> None:
    """Assert no two simultaneously-live storages overlap in the arena.

    Two slots may share bytes only when their lifetimes are disjoint, or
    when one took the other's slot in place (an explicit, safety-checked
    handoff at the junction step).  This runs at compile time — the planner
    is cheap enough to self-verify — and the overlapping-lifetime regression
    test calls it directly.
    """
    slots = list(plan.slots.items())
    for i, (sid_a, a) in enumerate(slots):
        for sid_b, b in slots[i + 1 :]:
            if a.offset + a.nbytes <= b.offset or b.offset + b.nbytes <= a.offset:
                continue  # disjoint byte ranges
            if a.last_use < b.first_def or b.last_use < a.first_def:
                continue  # disjoint lifetimes
            if b.reused_from == sid_a and b.first_def >= a.last_use:
                continue  # in-place handoff
            if a.reused_from == sid_b and a.first_def >= b.last_use:
                continue
            raise AssertionError(
                f"arena plan aliases live storages b{sid_a} and b{sid_b}: "
                f"[{a.offset}, {a.offset + a.nbytes}) steps {a.first_def}-{a.last_use} vs "
                f"[{b.offset}, {b.offset + b.nbytes}) steps {b.first_def}-{b.last_use}"
            )


# ---------------------------------------------------------------------------
# Plan compilation entry point
# ---------------------------------------------------------------------------
def compile_execution_plan(program, steps, tile: int, active_bits=None) -> ExecutionPlan:
    """Compile the bound plan-backend schedule into an :class:`ExecutionPlan`.

    ``steps`` is the schedule `_bind_plan` produced (each step carrying its
    IR op and, for bit-serial steps, the compiled kernel plan); ``tile`` is
    the micro-batch size every arena view is sized for.  Raises
    :class:`PlanUnsupported` when the schedule cannot be statically typed.
    """
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    for step in steps:
        if step.inputs and program.output_id in step.inputs:
            raise PlanUnsupported("program output is read by a later op")
    specs = infer_buffer_specs(program, steps)
    groups = _chain_groups(steps, program)

    plan_steps: List[PlanStep] = []
    storage: Dict[int, int] = {program.input_id: program.input_id}
    fused_away = 0
    fused_chains = 0
    for first, last in groups:
        run = steps[first : last + 1]
        internal = {s.output for s in run[:-1]}
        output = run[-1].output
        if len(run) == 1:
            step = run[0]
            op = step.op
            key = len(plan_steps)
            fn = _compile_stage_fn(op, step, active_bits, key)
            ext_inputs = tuple(step.inputs)
            kinds = (op.kind,)
            is_view = op.kind == "flatten"
            if step.plan is not None or op.kind == "quantize":
                inplace_mode = "any"  # input consumed before out is written
            elif op.kind in ("batchnorm", "activation", "add"):
                inplace_mode = "exact"  # direct same-spec ufunc
            else:
                inplace_mode = "none"
            inplace_inputs = ext_inputs
        else:
            fused_chains += 1
            fused_away += len(run) - 1
            ext_inputs = tuple(
                dict.fromkeys(
                    b for s in run for b in s.inputs if b not in internal
                )
            )
            stages = [(s.op, s) for s in run]
            key = len(plan_steps)
            fn = _compile_chain_fn(stages, ext_inputs, specs, active_bits, key)
            kinds = tuple(s.op.kind for s in run)
            is_view = False
            # The chain's out is written only by the final stage, whose
            # inputs are chain-internal scratch unless an external feeds it
            # directly; inputs consumed exclusively by stage 0 are safe to
            # overwrite — except when stage 0 is a reshape view, whose
            # output *aliases* the input's memory for the rest of the chain.
            stage0_only = [
                b
                for b in run[0].inputs
                if run[0].op.kind != "flatten"
                and all(b not in s.inputs for s in run[1:])
            ]
            inplace_mode = "any" if stage0_only else "none"
            inplace_inputs = tuple(dict.fromkeys(stage0_only))

        if output == program.output_id:
            placement = "output"
            inplace_mode = "none"
        elif is_view:
            placement = "view"
            inplace_mode = "none"
        elif kinds == ("conv",):
            # Float convs allocate internally (im2col + BLAS); copying the
            # result into the arena would add a full pass for no reuse win.
            placement = "heap"
            inplace_mode = "none"
        else:
            placement = "arena"

        plan_steps.append(
            PlanStep(
                fn=fn,
                inputs=ext_inputs,
                output=output,
                kind=kinds[-1] if len(kinds) == 1 else "fused",
                fused=kinds,
                placement=placement,
                inplace_mode=inplace_mode,
                inplace_inputs=inplace_inputs,
            )
        )

    # Storage map: view outputs share their base buffer's storage.
    for step in plan_steps:
        if step.placement == "view":
            storage[step.output] = storage[step.inputs[0]]
        else:
            storage[step.output] = step.output
    # Buffers only ever read (program input) already mapped; anything else
    # appearing as an input must have been produced above.
    for step in plan_steps:
        for buf in step.inputs:
            if buf not in storage:
                raise PlanUnsupported(f"buffer b{buf} is read before any step defines it")

    slots, arena_bytes, peak_live = _plan_arena(
        plan_steps, specs, storage, program.input_id, program.output_id, tile
    )

    out_spec = specs[program.output_id]
    _specialize_kernel_plans(steps, active_bits)
    plan = ExecutionPlan(
        steps=plan_steps,
        tile=tile,
        arena_bytes=arena_bytes,
        slots=slots,
        storage=storage,
        specs=specs,
        input_id=program.input_id,
        output_id=program.output_id,
        out_shape=out_spec.shape,
        out_dtype=out_spec.dtype,
        counters={
            "arena_bytes": int(arena_bytes),
            "peak_live_bytes": int(peak_live),
            "tile": int(tile),
            "ops": len(program.ops),
            "steps": len(plan_steps),
            "fused_chains": int(fused_chains),
            "steps_fused": int(fused_away),
        },
    )
    validate_arena_plan(plan)
    return plan


def _specialize_kernel_plans(steps, active_bits) -> None:
    """Retarget this schedule's kernel plans at the planned runtime.

    Three compile-time decisions: switch stage 2 to the per-tap gather (the
    narrow column buffer lives in shard scratch and stays cache-hot at the
    plan's fixed tile — see ``ConvKernelPlan.tap_gather``; bitwise-equal
    accumulation order), switch the address encoder to the uint64
    mask-multiply bit transpose (identical addresses, ~16× less encode
    work), and precompute the hoisted-padding border tensors so shard
    workers never race to derive the same constants.  The plans are private
    to this executor's bind — the pooled executor compiles its own,
    untouched ones, preserving PR 2's execution for A/B comparison.
    """
    for step in steps:
        plan = getattr(step, "plan", None)
        if plan is None:
            continue
        conv_plan = getattr(plan, "conv_plan", plan)
        if not getattr(conv_plan, "_autotuned", False):
            # The heuristic defaults (O2); the O3 autotuner measured its own
            # winners and marked the plan — leave those alone.
            conv_plan.tap_gather = "per_tap"
            conv_plan.encoder = "bitmul"
        if not (conv_plan.hoist_padding and conv_plan.padding):
            continue
        op = step.op
        h, w = op.in_shape[1], op.in_shape[2]
        oh, ow = op.out_shape[1], op.out_shape[2]
        bits = active_bit_positions(conv_plan.act_bitwidth, active_bits)
        conv_plan._border_tensor(h, w, oh, ow, conv_plan.stride, bits)


# ---------------------------------------------------------------------------
# Shard runtime
# ---------------------------------------------------------------------------
class ShardRuntime:
    """One shard's execution state: the arena, its views, and scratch.

    A runtime is single-threaded by construction; the executor keeps a pool
    of them and checks one out per concurrently-running batch chunk, so the
    compiled plan itself stays immutable and thread-safe.
    """

    __slots__ = ("tile", "arena", "_views", "_scratch", "_plan_scratch")

    def __init__(self, plan: ExecutionPlan):
        self.tile = plan.tile
        self.arena = np.empty(max(plan.arena_bytes, 1), dtype=np.uint8)
        self._views: Dict[int, np.ndarray] = {}
        for buf, sid in plan.storage.items():
            slot = plan.slots.get(sid)
            if slot is None or buf not in plan.specs:
                continue
            spec = plan.specs[buf]
            nbytes = spec.tile_nbytes(plan.tile)
            flat = self.arena[slot.offset : slot.offset + nbytes]
            self._views[buf] = flat.view(spec.dtype).reshape((plan.tile,) + spec.shape)
        self._scratch: Dict[Tuple, np.ndarray] = {}
        # One shared kernel-scratch dict for every plan step: temporaries are
        # dead once a plan call returns, and sharing lets layers with the
        # same geometry (repeated blocks) reuse the same — cache-hot — pages
        # instead of each step pinning its own multi-megabyte buffers.
        self._plan_scratch: dict = {}

    def view(self, buf: int, n: int) -> np.ndarray:
        """The arena view of ``buf`` for an ``n``-sample (ragged) tile."""
        full = self._views[buf]
        return full if n == self.tile else full[:n]

    def temp(self, key, n: int, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A reusable ``(n,) + shape`` temporary (chain intermediates)."""
        full_key = (key, tuple(shape), np.dtype(dtype).str)
        full = self._scratch.get(full_key)
        if full is None:
            full = self._scratch[full_key] = np.empty((self.tile,) + tuple(shape), dtype)
        return full if n == self.tile else full[:n]

    def plan_scratch(self, key) -> dict:
        """The runtime's kernel-plan scratch dict (see `scratch_buf`).

        Shared across plan steps — scratch keys carry name/shape/dtype, so
        distinct temporaries never collide, while repeated-geometry layers
        deliberately share buffers.
        """
        return self._plan_scratch

    def allocated_bytes(self) -> int:
        """Arena + scratch bytes this runtime holds (for counters/tests)."""
        total = int(self.arena.nbytes)
        total += sum(buf.nbytes for buf in self._scratch.values())
        total += sum(buf.nbytes for buf in self._plan_scratch.values())
        return total
