"""Model compression pipelines: z-dimension weight pools and the xy baseline."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.clustering import kmeans
from repro.core.grouping import (
    extract_xy_vectors,
    least_squares_coefficients,
    reconstruct_from_xy_indices,
)
from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.policy import CompressionPolicy
from repro.core.tracing import LayerTrace, trace_model
from repro.core.weight_pool import WeightPool, build_weight_pool
from repro.nn import Conv2d, Linear, Module
from repro.utils.rng import SeedLike, new_rng


@dataclass
class CompressionResult:
    """Outcome of :func:`compress_model`."""

    model: Module
    pool: WeightPool
    policy: CompressionPolicy
    compressed_layers: List[str] = field(default_factory=list)
    skipped_layers: List[str] = field(default_factory=list)

    @property
    def num_compressed_layers(self) -> int:
        return len(self.compressed_layers)

    def weight_pool_modules(self) -> Dict[str, Module]:
        """Name → weight-pool layer mapping for the compressed model."""
        return {
            name: module
            for name, module in self.model.named_modules()
            if isinstance(module, (WeightPoolConv2d, WeightPoolLinear))
        }


def _replace_child(model: Module, qualified_name: str, new_module: Module) -> None:
    """Replace the module at ``qualified_name`` (dot-separated) with ``new_module``."""
    parts = qualified_name.split(".")
    parent = model
    for part in parts[:-1]:
        parent = parent._modules[part]
    setattr(parent, parts[-1], new_module)


def compress_model(
    model: Module,
    input_shape: Tuple[int, int, int],
    pool: Optional[WeightPool] = None,
    pool_size: int = 64,
    policy: Optional[CompressionPolicy] = None,
    metric: str = "cosine",
    seed: SeedLike = 0,
    inplace: bool = False,
) -> CompressionResult:
    """Convert a pretrained model into a weight-pool model.

    Follows the paper's flow (Figure 2): build the shared pool by clustering
    the pretrained z-dimension weight vectors (unless an existing ``pool`` is
    supplied), then replace every policy-eligible convolution / linear layer
    with a weight-pool layer whose indices point into that pool.

    The returned model still holds the original weights as latent fine-tuning
    state; its forward pass uses the reconstructed (pool) weights.
    """
    policy = policy or CompressionPolicy()
    if not inplace:
        model = copy.deepcopy(model)
    if pool is None:
        pool = build_weight_pool(
            model,
            input_shape,
            pool_size=pool_size,
            policy=policy,
            metric=metric,
            seed=seed,
        )
    elif pool.group_size != policy.group_size:
        raise ValueError(
            f"pool group size {pool.group_size} does not match policy group size "
            f"{policy.group_size}"
        )

    traces = trace_model(model, input_shape)
    compressed, skipped = [], []
    for trace in traces:
        module = trace.module
        if isinstance(module, (WeightPoolConv2d, WeightPoolLinear)):
            # Already compressed (idempotent compression).
            compressed.append(trace.name)
            continue
        if not policy.eligible(trace):
            skipped.append(trace.name)
            continue
        if isinstance(module, Conv2d) and trace.kind == "conv":
            replacement = WeightPoolConv2d.from_conv(
                module, pool, pad_channels=policy.pad_channels
            )
        elif isinstance(module, Linear):
            replacement = WeightPoolLinear.from_linear(module, pool)
        else:  # pragma: no cover - defensive
            skipped.append(trace.name)
            continue
        _replace_child(model, trace.name, replacement)
        compressed.append(trace.name)

    return CompressionResult(
        model=model,
        pool=pool,
        policy=policy,
        compressed_layers=compressed,
        skipped_layers=skipped,
    )


@dataclass
class XYCompressionResult:
    """Outcome of :func:`apply_xy_pool_to_model` (the Figure 4 baseline)."""

    model: Module
    pool_vectors: np.ndarray
    with_coefficients: bool
    compressed_layers: List[str] = field(default_factory=list)


def apply_xy_pool_to_model(
    model: Module,
    input_shape: Tuple[int, int, int],
    pool_size: int = 64,
    with_coefficients: bool = False,
    kernel_size: int = 3,
    policy: Optional[CompressionPolicy] = None,
    metric: str = "cosine",
    seed: SeedLike = 0,
    inplace: bool = False,
) -> XYCompressionResult:
    """Project conv weights onto a shared pool of 2D kernels (Son et al. style).

    This is the xy-dimension baseline of Figure 4: every ``kernel_size`` ×
    ``kernel_size`` kernel is replaced by its nearest pool kernel, optionally
    scaled by a per-kernel least-squares coefficient.  Weights are modified in
    place (projection), without introducing new layer types — the baseline is
    only used for accuracy comparison.
    """
    policy = policy or CompressionPolicy()
    if not inplace:
        model = copy.deepcopy(model)
    traces = trace_model(model, input_shape)
    eligible = [
        t
        for t in traces
        if t.kind == "conv"
        and t.kernel_size == kernel_size
        and not (t.is_first and not policy.compress_first_layer)
        and not t.is_depthwise
    ]
    if not eligible:
        raise ValueError(
            f"no {kernel_size}x{kernel_size} convolution layers eligible for xy pooling"
        )

    all_kernels = np.concatenate(
        [extract_xy_vectors(t.module.weight.data) for t in eligible], axis=0
    )
    rng = new_rng(seed)
    max_cluster_vectors = 20000
    if len(all_kernels) > max_cluster_vectors:
        subset = rng.choice(len(all_kernels), size=max_cluster_vectors, replace=False)
        cluster_input = all_kernels[subset]
    else:
        cluster_input = all_kernels
    result = kmeans(cluster_input, pool_size, metric=metric, seed=rng)
    pool_vectors = result.centroids

    pool = WeightPool(vectors=pool_vectors, metric=metric)
    compressed = []
    for trace in eligible:
        weight = trace.module.weight.data
        kernels = extract_xy_vectors(weight)
        indices = pool.assign(kernels)
        coeffs = (
            least_squares_coefficients(kernels, pool_vectors, indices)
            if with_coefficients
            else None
        )
        new_weight = reconstruct_from_xy_indices(
            indices, pool_vectors, weight.shape, coefficients=coeffs
        )
        trace.module.weight.copy_(new_weight)
        compressed.append(trace.name)

    return XYCompressionResult(
        model=model,
        pool_vectors=pool_vectors,
        with_coefficients=with_coefficients,
        compressed_layers=compressed,
    )
