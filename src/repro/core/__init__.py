"""Weight pools and bit-serial lookup-table execution (the paper's contribution).

Public API overview
-------------------
Compression (paper §3):

* :func:`repro.core.compress.compress_model` — replace eligible layers of a
  trained model with weight-pool layers sharing one :class:`WeightPool`.
* :class:`repro.core.weight_pool.WeightPool` — the shared pool of 1×N weight
  vectors, built by :func:`repro.core.weight_pool.build_weight_pool`.
* :func:`repro.core.finetune.finetune_compressed_model` — index-reassignment
  fine-tuning (forward reassigns, backward updates latent weights).

Bit-serial LUT execution (paper §3.1–3.3):

* :func:`repro.core.lut.build_lut` — dot-product lookup table between every
  1-bit activation vector and every pool vector.
* :func:`repro.core.bitserial.bitserial_conv2d` — functional bit-serial
  convolution driven entirely by LUT lookups.
* :mod:`repro.core.kernel_plan` — compile-once / execute-many per-layer
  kernel plans (pre-gathered sub-tables, fused epilogue, compact dtypes)
  backing the fast execution path.
* :class:`repro.core.engine.BitSerialInferenceEngine` — calibrates activation
  ranges and runs whole networks at arbitrary activation/LUT bitwidths.

Whole-network compilation (the graph pipeline):

* :mod:`repro.core.graph` — lower a model to a flat dataflow graph via the
  per-module ``lower_into`` hooks.
* :mod:`repro.core.program` — type the graph into a :class:`NetworkProgram`
  IR and execute it batch-wise through a multi-backend :class:`Executor`
  (``plan`` / ``reference`` / MCU ``cost``).
* :mod:`repro.core.pipeline` — the pass-manager pipeline: registered
  optimization passes at ordered levels (``O0``–``O3``), an IR verifier,
  and the ``O3`` compile-time kernel autotuner.
* :func:`repro.core.export.save_program` / ``load_program`` — the compiled
  program as a serializable deployment artifact.

Storage accounting (paper Eq. 3–4, Table 3):

* :mod:`repro.core.storage`.
"""

from repro.core.clustering import KMeansResult, kmeans
from repro.core.grouping import (
    extract_xy_vectors,
    extract_z_vectors,
    reconstruct_from_xy_indices,
    reconstruct_from_z_indices,
    pad_channels_to_group,
)
from repro.core.weight_pool import WeightPool, build_weight_pool
from repro.core.policy import CompressionPolicy
from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.compress import CompressionResult, compress_model, apply_xy_pool_to_model
from repro.core.finetune import finetune_compressed_model, freeze_assignments
from repro.core.lut import LookupTable, build_lut
from repro.core.bitserial import (
    bit_decompose,
    bit_vector_values,
    bitserial_conv2d,
    bitserial_conv2d_reference,
    bitserial_dot,
    bitserial_linear,
    bitserial_linear_reference,
)
from repro.core.kernel_plan import (
    ConvKernelPlan,
    LinearKernelPlan,
    compile_conv_plan,
    compile_linear_plan,
)
from repro.core.graph import GraphBuilder, GraphOp, NetworkGraph, lower_model
from repro.core.memory_plan import (
    ExecutionPlan,
    PlanUnsupported,
    ShardRuntime,
    compile_execution_plan,
    validate_arena_plan,
)
from repro.core.pipeline import (
    OPT_LEVELS,
    PASS_REGISTRY,
    Pass,
    PassManager,
    PipelineReport,
    VerificationError,
    autotune_schedule,
    dedupe_quantize,
    fold_activation_into_quantize,
    fold_batchnorm,
    format_pipeline_report,
    fuse_requantize,
    register_pass,
    registered_passes,
    verify_program,
)
from repro.core.program import (
    Executor,
    IR_OP_KINDS,
    NetworkProgram,
    ProgramOp,
    compile_network,
    register_backend,
)
from repro.core.stream_plan import (
    StreamPlan,
    StreamRule,
    StreamSession,
    StreamUnsupported,
    compile_stream_plan,
    stream_support,
)
from repro.core.engine import BitSerialInferenceEngine, EngineConfig
from repro.core.storage import (
    StorageReport,
    analyze_model_storage,
    content_digest,
    file_sha256,
    lut_storage_bits,
    theoretical_compression_ratio,
)
from repro.core.export import (
    DeploymentPackage,
    ProgramFormatError,
    build_deployment_package,
    emit_c_header,
    load_program,
    package_from_program,
    read_program_metadata,
    save_program,
    verify_program_digest,
)
from repro.core.tracing import LayerTrace, trace_model

__all__ = [
    "kmeans",
    "KMeansResult",
    "extract_z_vectors",
    "extract_xy_vectors",
    "reconstruct_from_z_indices",
    "reconstruct_from_xy_indices",
    "pad_channels_to_group",
    "WeightPool",
    "build_weight_pool",
    "CompressionPolicy",
    "WeightPoolConv2d",
    "WeightPoolLinear",
    "compress_model",
    "apply_xy_pool_to_model",
    "CompressionResult",
    "finetune_compressed_model",
    "freeze_assignments",
    "LookupTable",
    "build_lut",
    "bit_decompose",
    "bit_vector_values",
    "bitserial_dot",
    "bitserial_conv2d",
    "bitserial_conv2d_reference",
    "bitserial_linear",
    "bitserial_linear_reference",
    "ConvKernelPlan",
    "LinearKernelPlan",
    "compile_conv_plan",
    "compile_linear_plan",
    "BitSerialInferenceEngine",
    "EngineConfig",
    "GraphBuilder",
    "GraphOp",
    "NetworkGraph",
    "lower_model",
    "Executor",
    "ExecutionPlan",
    "IR_OP_KINDS",
    "NetworkProgram",
    "OPT_LEVELS",
    "PASS_REGISTRY",
    "Pass",
    "PassManager",
    "PipelineReport",
    "PlanUnsupported",
    "ProgramOp",
    "ShardRuntime",
    "VerificationError",
    "autotune_schedule",
    "compile_execution_plan",
    "compile_network",
    "dedupe_quantize",
    "fold_activation_into_quantize",
    "fold_batchnorm",
    "format_pipeline_report",
    "fuse_requantize",
    "register_backend",
    "register_pass",
    "StreamPlan",
    "StreamRule",
    "StreamSession",
    "StreamUnsupported",
    "compile_stream_plan",
    "stream_support",
    "registered_passes",
    "validate_arena_plan",
    "verify_program",
    "StorageReport",
    "analyze_model_storage",
    "content_digest",
    "file_sha256",
    "lut_storage_bits",
    "theoretical_compression_ratio",
    "DeploymentPackage",
    "build_deployment_package",
    "emit_c_header",
    "save_program",
    "load_program",
    "read_program_metadata",
    "verify_program_digest",
    "ProgramFormatError",
    "package_from_program",
    "LayerTrace",
    "trace_model",
]
