"""Model tracing: recover per-layer geometry from a single dummy forward pass.

Both the storage accounting (Table 3) and the MCU cost model (Figures 7–8,
Table 7) need, for every convolution and fully-connected layer, its weight
shape and the spatial size of its input.  Layers record their last input shape
during ``forward``; :func:`trace_model` runs one dummy batch and collects the
records in module-tree order (which matches execution order for all models in
the zoo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn import Conv2d, Linear, Module


@dataclass
class LayerTrace:
    """Geometry of one weight-bearing layer observed during tracing."""

    name: str
    kind: str  # "conv" or "linear"
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    groups: int
    input_hw: Tuple[int, int]
    output_hw: Tuple[int, int]
    weight_shape: Tuple[int, ...]
    has_bias: bool
    is_first: bool = False
    module: Optional[Module] = None

    @property
    def weight_params(self) -> int:
        """Number of weight parameters (excluding bias)."""
        return int(np.prod(self.weight_shape))

    @property
    def bias_params(self) -> int:
        return self.out_channels if self.has_bias else 0

    @property
    def is_depthwise(self) -> bool:
        return self.kind == "conv" and self.groups == self.in_channels and self.groups > 1

    @property
    def is_pointwise(self) -> bool:
        return self.kind == "conv" and self.kernel_size == 1 and self.groups == 1

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference of this layer."""
        if self.kind == "linear":
            return self.in_channels * self.out_channels
        oh, ow = self.output_hw
        per_position = (
            (self.in_channels // self.groups) * self.kernel_size * self.kernel_size
        )
        return self.out_channels * oh * ow * per_position


def trace_model(
    model: Module, input_shape: Tuple[int, int, int], batch_size: int = 1
) -> List[LayerTrace]:
    """Run a dummy forward pass and return traces for every conv/linear layer.

    Parameters
    ----------
    model:
        Any model built from :mod:`repro.nn` layers (including weight-pool
        layers, which subclass the plain layers).
    input_shape:
        ``(C, H, W)`` of a single input sample.
    """
    model.eval()
    dummy = np.zeros((batch_size,) + tuple(input_shape), dtype=np.float64)
    model(dummy)

    traces: List[LayerTrace] = []
    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            if not hasattr(module, "last_input_shape"):
                raise RuntimeError(
                    f"layer '{name}' was never executed during tracing; "
                    "is it reachable from forward()?"
                )
            _, _, h, w = module.last_input_shape
            oh, ow = module.output_shape((h, w))
            traces.append(
                LayerTrace(
                    name=name,
                    kind="conv",
                    in_channels=module.in_channels,
                    out_channels=module.out_channels,
                    kernel_size=module.kernel_size,
                    stride=module.stride,
                    padding=module.padding,
                    groups=module.groups,
                    input_hw=(h, w),
                    output_hw=(oh, ow),
                    weight_shape=tuple(module.weight.shape),
                    has_bias=module.bias is not None,
                    module=module,
                )
            )
        elif isinstance(module, Linear):
            if not hasattr(module, "last_input_shape"):
                raise RuntimeError(
                    f"layer '{name}' was never executed during tracing; "
                    "is it reachable from forward()?"
                )
            traces.append(
                LayerTrace(
                    name=name,
                    kind="linear",
                    in_channels=module.in_features,
                    out_channels=module.out_features,
                    kernel_size=1,
                    stride=1,
                    padding=0,
                    groups=1,
                    input_hw=(1, 1),
                    output_hw=(1, 1),
                    weight_shape=tuple(module.weight.shape),
                    has_bias=module.bias is not None,
                    module=module,
                )
            )
    if traces:
        first_conv = next((t for t in traces if t.kind == "conv"), traces[0])
        first_conv.is_first = True
    return traces


def total_weight_params(traces: List[LayerTrace]) -> int:
    """Total number of weight parameters across traced layers."""
    return sum(t.weight_params for t in traces)
