"""Compression policy: which layers are replaced by weight-pool layers.

The paper's defaults (§3, §5.1, §5.2):

* the first convolution layer stays uncompressed (its depth is below the
  group size and it is a small fraction of storage/compute);
* depthwise convolutions stay uncompressed (MobileNet-v2, §5.1);
* fully-connected layers stay uncompressed by default (footnote 1: pooling
  them costs accuracy and rarely improves compression), but can be enabled;
* any convolution whose channel count is not a multiple of the group size is
  either zero-padded or left uncompressed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tracing import LayerTrace


@dataclass
class CompressionPolicy:
    """Configuration of layer eligibility for weight-pool compression."""

    group_size: int = 8
    compress_first_layer: bool = False
    compress_depthwise: bool = False
    compress_fc: bool = False
    pad_channels: bool = False  # zero-pad thin layers instead of skipping them

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {self.group_size}")

    def eligible(self, trace: LayerTrace) -> bool:
        """Return True when the traced layer should be weight-pool compressed."""
        if trace.kind == "linear":
            if not self.compress_fc:
                return False
            return trace.in_channels % self.group_size == 0 or self.pad_channels
        # Convolutions.
        if trace.is_first and not self.compress_first_layer:
            return False
        if trace.is_depthwise and not self.compress_depthwise:
            return False
        channels_per_group = trace.in_channels // trace.groups
        if channels_per_group % self.group_size != 0 and not self.pad_channels:
            return False
        if trace.is_depthwise and channels_per_group < self.group_size:
            # A depthwise kernel has a single channel; z-grouping cannot apply.
            return False
        return True

    def describe(self) -> str:
        """Human-readable summary used in experiment reports."""
        parts = [f"group_size={self.group_size}"]
        parts.append("first layer compressed" if self.compress_first_layer else "first layer kept")
        parts.append("depthwise compressed" if self.compress_depthwise else "depthwise kept")
        parts.append("FC compressed" if self.compress_fc else "FC kept")
        parts.append("pad thin layers" if self.pad_channels else "skip thin layers")
        return ", ".join(parts)
