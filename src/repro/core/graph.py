"""Network-level lowering: turn a ``Module`` tree into a flat dataflow graph.

The per-layer engine of PR 1 executes the network by monkey-patching
``layer.runtime`` and re-entering the Python ``Module.forward`` tree for every
batch.  Whole-network compilation instead *lowers* the model once into a flat
list of :class:`GraphOp` nodes in execution order, each reading and writing
numbered buffers — the front end of the compile pipeline
(``calibrate → lower → optimize passes → execute/export``).

Lowering is structural, not trace-based: every module that participates in
inference implements a ``lower_into(builder, x)`` hook (see
:class:`repro.nn.module.Module`) that emits its ops through a
:class:`GraphBuilder` and returns the buffer holding its output.  Containers
chain their children; residual blocks emit explicit ``add`` ops, which a
linear trace of module calls could never recover.  The hooks emit *generic*
op kinds (``conv``, ``batchnorm``, ``activation``, ``pool``, ``flatten``,
``add``); :mod:`repro.core.program` then types them into the executable
bit-serial IR (``quantize`` / ``bitserial_conv`` / ``dequantize`` / …).

Shapes are inferred per-sample (no batch axis) during lowering, so compile
passes and the MCU cost backend know every buffer's geometry without running
a dummy forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.nn import Module


@dataclass(eq=False)
class GraphOp:
    """One node of the lowered dataflow graph.

    ``inputs``/``output`` are buffer ids; ``module`` is the originating module
    (used by the typing stage to decide float vs bit-serial execution and to
    pull weights/indices); ``attrs`` carries kind-specific metadata emitted by
    the lowering hook (e.g. ``fn="relu"`` for activations).
    """

    kind: str
    inputs: Tuple[int, ...]
    output: int
    name: str = ""
    module: Optional[Module] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    in_shape: Tuple[int, ...] = ()
    out_shape: Tuple[int, ...] = ()


@dataclass
class NetworkGraph:
    """The lowered model: ops in execution order over numbered buffers."""

    ops: List[GraphOp]
    input_id: int
    output_id: int
    num_buffers: int
    input_shape: Tuple[int, ...]

    def kinds(self) -> List[str]:
        return [op.kind for op in self.ops]


class GraphBuilder:
    """Accumulates :class:`GraphOp` nodes while ``lower_into`` hooks recurse.

    Hooks call :meth:`add` to emit an op (the builder infers the output
    buffer's shape) and :meth:`lower` to descend into a child module with a
    scoped name.  The builder performs the compile-time shape checking that
    the per-batch runtime paths used to repeat on every forward.
    """

    def __init__(self, input_shape: Tuple[int, ...]):
        self.ops: List[GraphOp] = []
        self._shapes: List[Tuple[int, ...]] = [tuple(int(d) for d in input_shape)]
        self._name_stack: List[str] = []

    # -- buffers ---------------------------------------------------------------
    @property
    def input_id(self) -> int:
        return 0

    def shape_of(self, buffer_id: int) -> Tuple[int, ...]:
        return self._shapes[buffer_id]

    def _new_buffer(self, shape: Tuple[int, ...]) -> int:
        self._shapes.append(tuple(int(d) for d in shape))
        return len(self._shapes) - 1

    # -- emission ---------------------------------------------------------------
    def add(self, kind: str, *inputs: int, module: Optional[Module] = None, **attrs) -> int:
        """Emit one op reading ``inputs`` and return its output buffer id."""
        in_shape = self.shape_of(inputs[0]) if inputs else ()
        out_shape = self._infer_shape(kind, inputs, module, attrs)
        out = self._new_buffer(out_shape)
        self.ops.append(
            GraphOp(
                kind=kind,
                inputs=tuple(inputs),
                output=out,
                name=".".join(self._name_stack),
                module=module,
                attrs=attrs,
                in_shape=in_shape,
                out_shape=out_shape,
            )
        )
        return out

    def lower(self, module: Module, x: int, name: str = "") -> int:
        """Lower a child module under a scoped name and return its output buffer."""
        if name:
            self._name_stack.append(name)
        try:
            return module.lower_into(self, x)
        finally:
            if name:
                self._name_stack.pop()

    # -- shape inference ---------------------------------------------------------
    def _infer_shape(
        self, kind: str, inputs: Tuple[int, ...], module: Optional[Module], attrs: Dict
    ) -> Tuple[int, ...]:
        shape = self.shape_of(inputs[0]) if inputs else ()
        name = ".".join(self._name_stack) or kind
        if kind == "conv":
            c, h, w = shape
            if c != module.in_channels:
                raise ValueError(
                    f"layer '{name}' expects {module.in_channels} input channels, "
                    f"the graph provides {c}"
                )
            oh, ow = module.output_shape((h, w))
            return (module.out_channels, oh, ow)
        if kind == "linear":
            if len(shape) != 1 or shape[0] != module.in_features:
                raise ValueError(
                    f"layer '{name}' expects {module.in_features} input features, "
                    f"the graph provides {shape}"
                )
            return (module.out_features,)
        if kind in ("batchnorm", "activation"):
            return shape
        if kind == "pool":
            if attrs.get("pool") == "global_avg":
                return (shape[0],)
            k = attrs["kernel"]
            c, h, w = shape
            if h % k or w % k:
                raise ValueError(
                    f"pool '{name}' kernel {k} must divide spatial dims {(h, w)}"
                )
            return (c, h // k, w // k)
        if kind == "flatten":
            return (int(np.prod(shape)),)
        if kind == "add":
            for other in inputs[1:]:
                if self.shape_of(other) != shape:
                    raise ValueError(
                        f"add '{name}' mixes shapes {shape} and {self.shape_of(other)}"
                    )
            return shape
        raise ValueError(f"unknown graph op kind '{kind}' emitted by '{name}'")


def lower_model(model: Module, input_shape: Tuple[int, ...]) -> NetworkGraph:
    """Lower ``model`` into a :class:`NetworkGraph` for a ``(C, H, W)`` input.

    Raises ``NotImplementedError`` when the model (or one of its children)
    does not implement the ``lower_into`` hook; callers that support a legacy
    fallback (the inference engine, the MCU estimators) catch this.
    """
    if len(input_shape) != 3:
        raise ValueError(f"expected a (C, H, W) input shape, got {input_shape}")
    builder = GraphBuilder(input_shape)
    model.eval()
    output = builder.lower(model, builder.input_id)
    return NetworkGraph(
        ops=builder.ops,
        input_id=builder.input_id,
        output_id=output,
        num_buffers=len(builder._shapes),
        input_shape=tuple(input_shape),
    )
