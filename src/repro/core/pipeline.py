"""Pass-manager compiler pipeline: one subsystem owning "model → program".

PRs 1–4 grew four layers of execution machinery (per-layer kernel plans, the
graph IR, ahead-of-time memory plans, serving), but the glue between them was
ad-hoc: :func:`~repro.core.program.compile_network` hard-coded two pass
calls, kernel-variant choices (per-tap gather vs mask-multiply encoder, tile
size, shard count) were baked-in heuristics, and nothing verified the IR
between transformations.  This module organizes all of it the way production
ML compilers do — as a *pass pipeline* with verification and empirical
tuning:

* :class:`Pass` / :data:`PASS_REGISTRY` — every transformation is a
  registered, typed pass with a ``stage`` (``graph`` rewrites the IR,
  ``schedule`` compiles the bound step schedule, ``tune`` picks kernel
  variants empirically) and the first optimization :data:`level
  <OPT_LEVELS>` that enables it.
* :class:`PassManager` — validates level/pass selections (unknown names
  raise, listing the valid choices), runs the graph stage in registration
  order, and produces a :class:`PipelineReport` (per-pass counters, op
  counts before/after, verifier runs) that travels with the program: into
  saved artifact headers, repository metadata, and the serve ``/stats``
  payload.
* **Optimization levels** — ``O0`` is the reference lowering (bit-exact
  with the per-layer engine), ``O1`` adds the graph passes (BatchNorm fold,
  requantize fusion, quantize CSE, activation-clip fold), ``O2`` adds the
  ahead-of-time fusion/arena memory plan, and ``O3`` adds compile-time
  kernel autotuning.  Every level produces the same predictions — the graph
  passes change only the float association of epilogues (documented ~1e-12
  relative tolerance); kernel-variant and shard choices at the
  schedule/tune stages are bitwise identical by construction, and the tile
  choice carries exactly the auto-tile heuristic's long-standing caveat
  (the float stem conv's BLAS reduction order varies with batch tile).
* :func:`verify_program` — an IR verifier (SSA/def-before-use, shape and
  dtype propagation, single-consumer epilogue claims) run between passes in
  debug mode (``debug=True`` or ``REPRO_PIPELINE_DEBUG=1``) and once at
  pipeline exit always, so a broken pass fails at compile time with the
  offending op named instead of deep inside a kernel.
* :func:`autotune_schedule` — the ``O3`` empirical tuner: micro-benchmarks
  candidate kernel specializations (stage-2 tap gather schedule, address
  encoder), micro-batch tile sizes and shard counts on synthetic inputs at
  compile time, picks winners per layer, and records every decision in the
  pipeline report.  All candidates are bitwise-identical (the tuner asserts
  it on the spot), so tuning can never change outputs — only speed.

The four graph passes lived in :mod:`repro.core.program` through PR 4; they
moved here with identical semantics and are re-exported from
:mod:`repro.core` under their original names.
"""

from __future__ import annotations

import os
import sys
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.functional import conv_output_size
from repro.quantization.quantizer import QuantParams

# ---------------------------------------------------------------------------
# Optimization levels
# ---------------------------------------------------------------------------
#: Ordered optimization levels.  Each level enables every pass of the levels
#: below it; the docs table in ``docs/ARCHITECTURE.md`` §3 names what each
#: adds (a docs test keeps the two in sync).
OPT_LEVELS: Tuple[str, ...] = ("O0", "O1", "O2", "O3", "O4")

#: Pipeline stages, in execution order.  ``graph`` passes rewrite the IR
#: (run by :meth:`PassManager.run`), ``schedule`` passes compile the bound
#: step schedule, ``tune`` passes pick kernel variants empirically, and
#: ``codegen`` passes lower the planned schedule to native code (all three
#: non-graph stages run when the :class:`~repro.core.program.Executor` binds
#: the program).
PASS_STAGES: Tuple[str, ...] = ("graph", "schedule", "tune", "codegen")


def _level_index(level: str) -> int:
    if level not in OPT_LEVELS:
        raise ValueError(
            f"unknown optimization level {level!r}; valid levels: "
            f"{', '.join(OPT_LEVELS)}"
        )
    return OPT_LEVELS.index(level)


def level_enables(level: str, threshold: str) -> bool:
    """True when optimization ``level`` enables passes gated at ``threshold``."""
    return _level_index(level) >= _level_index(threshold)


# ---------------------------------------------------------------------------
# Pass abstraction and registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Pass:
    """One registered compiler pass.

    ``fn(program) -> Dict[str, int]`` applies a *graph*-stage pass and
    returns its report counters; schedule/tune passes are registered for
    reporting and level-gating but execute inside the executor bind (their
    ``fn`` is ``None``).  ``counters`` names the report keys the pass emits
    (documented per pass in ``docs/ARCHITECTURE.md``).
    """

    name: str
    stage: str
    level: str
    fn: Optional[Callable[[Any], Dict[str, int]]] = None
    rewrites: str = ""
    counters: Tuple[str, ...] = ()


#: Registered passes by name, in registration order (dicts preserve it);
#: registration order *is* execution order within a stage.
PASS_REGISTRY: Dict[str, Pass] = {}


def register_pass(pass_: Pass) -> Pass:
    """Register a pass; names are unique, stages and levels validated."""
    if pass_.name in PASS_REGISTRY:
        raise ValueError(f"pass '{pass_.name}' is already registered")
    if pass_.stage not in PASS_STAGES:
        raise ValueError(
            f"pass '{pass_.name}' has unknown stage {pass_.stage!r}; "
            f"valid stages: {', '.join(PASS_STAGES)}"
        )
    _level_index(pass_.level)
    PASS_REGISTRY[pass_.name] = pass_
    return pass_


def registered_passes(stage: Optional[str] = None) -> List[Pass]:
    """Registered passes in registration order, optionally one stage only."""
    passes = list(PASS_REGISTRY.values())
    if stage is None:
        return passes
    return [p for p in passes if p.stage == stage]


# ---------------------------------------------------------------------------
# Graph passes (moved verbatim from repro.core.program)
# ---------------------------------------------------------------------------
def _consumer_map(ops) -> Dict[int, List]:
    consumers: Dict[int, List] = {}
    for op in ops:
        for buf in op.inputs:
            consumers.setdefault(buf, []).append(op)
    return consumers


def _require_bound(program) -> None:
    if not program.bound:
        raise RuntimeError(
            "program is structural (compiled without lut/activation_params); "
            "calibrate an engine and compile() it to execute data"
        )


def _quant_level(value: float, params: QuantParams) -> int:
    """The integer level ``quantize(value)`` maps to."""
    q = int(np.round(value / params.scale)) + params.zero_point
    return int(np.clip(q, params.qmin, params.qmax))


def fold_batchnorm(program) -> int:
    """Fold BatchNorm ops into the preceding bit-serial epilogue.

    ``bn(deq(acc)) = bn_scale·(α·acc + β) + bn_shift`` collapses into a
    per-filter ``α', β'`` on the dequantize/requantize op, deleting one full
    float pass over the activations per compressed conv.  Returns the number
    of BatchNorms folded.
    """
    _require_bound(program)
    consumers = _consumer_map(program.ops)
    removed = []
    for op in program.ops:
        if op.kind != "dequantize" or len(op.out_shape) != 3:
            continue
        users = consumers.get(op.output, [])
        if len(users) != 1 or users[0].kind != "batchnorm" or op.output == program.output_id:
            continue
        bn = users[0]
        scale = bn.attrs["gamma"] * bn.attrs["inv_std"]
        shift = bn.attrs["beta"] - bn.attrs["mean"] * scale
        op.attrs["bn"] = (scale, shift)
        op.output = bn.output
        op.out_shape = bn.out_shape
        removed.append(bn)
    program.ops = [op for op in program.ops if op not in removed]
    return len(removed)


def fuse_requantize(program) -> int:
    """Elide ``dequantize → … → quantize`` chains into fused requantization.

    Walks forward from each dequantize through single-consumer ops that
    commute exactly with the (monotone) round/clip of quantization — relu,
    relu6, non-overlapping max pooling — and, when the chain ends in a
    ``quantize`` op, rewrites the dequantize into a ``requantize`` whose
    epilogue emits the next layer's integer activations directly.  The relu
    becomes the requantize clip's lower bound (the zero point represents
    exactly 0), relu6 caps the upper bound, and max pools run on the integer
    buffers.  Returns the number of pairs elided.
    """
    _require_bound(program)
    consumers = _consumer_map(program.ops)
    substitute: Dict[int, int] = {}
    removed: List = []
    fused = 0
    for op in program.ops:
        if op.kind != "dequantize":
            continue
        chain: List = []
        cursor = op
        quant = None
        while True:
            if cursor.output == program.output_id:
                break
            users = consumers.get(cursor.output, [])
            if len(users) != 1:
                break
            nxt = users[0]
            if nxt.kind == "activation" and nxt.attrs.get("fn") in ("relu", "relu6"):
                chain.append(nxt)
                cursor = nxt
            elif nxt.kind == "pool" and nxt.attrs.get("pool") == "max":
                chain.append(nxt)
                cursor = nxt
            elif nxt.kind == "flatten":
                chain.append(nxt)
                cursor = nxt
            elif nxt.kind == "quantize":
                quant = nxt
                break
            else:
                break
        if quant is None:
            continue
        out_params: QuantParams = quant.attrs["params"]
        clip_lo, clip_hi = out_params.qmin, out_params.qmax
        for link in chain:
            if link.kind != "activation":
                continue
            clip_lo = max(clip_lo, out_params.zero_point)
            if link.attrs["fn"] == "relu6":
                clip_hi = min(clip_hi, _quant_level(6.0, out_params))
            removed.append(link)
            substitute[link.output] = link.inputs[0]
        for link in chain:
            if link.kind == "pool":
                link.attrs["integer"] = True
        op.kind = "requantize"
        op.attrs["out_params"] = out_params
        op.attrs["clip_lo"] = clip_lo
        op.attrs["clip_hi"] = clip_hi
        removed.append(quant)
        substitute[quant.output] = quant.inputs[0]
        fused += 1

    if not fused:
        return 0
    program.ops = [op for op in program.ops if op not in removed]

    def resolve(buf: int) -> int:
        while buf in substitute:
            buf = substitute[buf]
        return buf

    for op in program.ops:
        op.inputs = tuple(resolve(buf) for buf in op.inputs)
    program.output_id = resolve(program.output_id)
    return fused


def dedupe_quantize(program) -> int:
    """Common-subexpression-eliminate duplicate quantize ops.

    Two consumers of the same buffer (e.g. a downsample block's ``conv1`` and
    its shortcut) calibrate on the same tensor and freeze identical
    parameters; their quantize ops are the same computation.  Keeps the first,
    rewires the rest.  Returns the number of ops removed.
    """
    _require_bound(program)
    seen: Dict[tuple, Any] = {}
    substitute: Dict[int, int] = {}
    removed = []
    for op in program.ops:
        if op.kind != "quantize":
            continue
        key = (op.inputs, op.attrs["params"])
        kept = seen.get(key)
        if kept is None:
            seen[key] = op
        else:
            substitute[op.output] = kept.output
            removed.append(op)
    if not removed:
        return 0
    program.ops = [op for op in program.ops if op not in removed]
    for op in program.ops:
        op.inputs = tuple(substitute.get(buf, buf) for buf in op.inputs)
    return len(removed)


def fold_activation_into_quantize(program) -> int:
    """Delete relu/relu6 ops whose every consumer is a quantize op.

    Rounding is monotone, so ``quantize(relu(x)) == clip(quantize(x), z, ·)``
    exactly; the activation becomes the quantize op's clip bounds (the zero
    point represents exactly 0).  Returns the number of activations folded.
    """
    _require_bound(program)
    consumers = _consumer_map(program.ops)
    substitute: Dict[int, int] = {}
    removed = []
    for op in program.ops:
        if op.kind != "activation" or op.attrs.get("fn") not in ("relu", "relu6"):
            continue
        if op.output == program.output_id:
            continue
        users = consumers.get(op.output, [])
        if not users or any(user.kind != "quantize" for user in users):
            continue
        for quant in users:
            params: QuantParams = quant.attrs["params"]
            quant.attrs["clip_lo"] = max(
                quant.attrs.get("clip_lo", params.qmin), params.zero_point
            )
            if op.attrs["fn"] == "relu6":
                quant.attrs["clip_hi"] = min(
                    quant.attrs.get("clip_hi", params.qmax), _quant_level(6.0, params)
                )
        substitute[op.output] = op.inputs[0]
        removed.append(op)
    if not removed:
        return 0
    program.ops = [op for op in program.ops if op not in removed]
    for op in program.ops:
        op.inputs = tuple(substitute.get(buf, buf) for buf in op.inputs)
    return len(removed)


# -- registration (order = execution order within the graph stage) -----------
register_pass(Pass(
    name="fold_batchnorm", stage="graph", level="O1",
    fn=lambda program: {"batchnorms_folded": fold_batchnorm(program)},
    rewrites="BatchNorm behind a bit-serial epilogue folds into the epilogue's per-filter α·acc + β",
    counters=("batchnorms_folded",),
))
register_pass(Pass(
    name="fuse_requantize", stage="graph", level="O1",
    fn=lambda program: {"pairs_fused": fuse_requantize(program)},
    rewrites="dequantize → … → quantize chains collapse into requantize (integer activations across compressed chains)",
    counters=("pairs_fused",),
))
register_pass(Pass(
    name="dedupe_quantize", stage="graph", level="O1",
    fn=lambda program: {"quantizes_removed": dedupe_quantize(program)},
    rewrites="CSE of duplicate quantize ops reading the same buffer with identical params",
    counters=("quantizes_removed",),
))
register_pass(Pass(
    name="fold_activation_into_quantize", stage="graph", level="O1",
    fn=lambda program: {"activations_folded": fold_activation_into_quantize(program)},
    rewrites="relu/relu6 whose every consumer is a quantize become the quantize's clip bounds",
    counters=("activations_folded",),
))
register_pass(Pass(
    name="memory_plan", stage="schedule", level="O2",
    rewrites="fuses elementwise glue runs and places every intermediate at a fixed offset of a preallocated arena",
    counters=("arena_bytes", "peak_live_bytes", "steps", "steps_fused", "fused_chains", "tile"),
))
register_pass(Pass(
    name="autotune", stage="tune", level="O3",
    rewrites="micro-benchmarks kernel specializations (tap gather, address encoder) and tile/shard choices, picks winners per layer",
    counters=("layers_tuned", "trials", "tile", "n_shards"),
))
register_pass(Pass(
    name="codegen", stage="codegen", level="O4",
    rewrites="lowers the planned schedule's native-eligible steps to C99, compiles them into a cached shared library, and executes them via ctypes",
    counters=("segments", "native_steps", "steps", "cache_hit", "source_bytes"),
))


# ---------------------------------------------------------------------------
# IR verifier
# ---------------------------------------------------------------------------
class VerificationError(RuntimeError):
    """The IR violates a structural invariant; the message names the op."""


def _expected_out_shape(op, in_shape: Tuple[int, ...]) -> Optional[Tuple[int, ...]]:
    """The out shape ``op`` must produce for ``in_shape``; ``None`` = unchecked."""
    kind = op.kind
    if kind in ("quantize", "batchnorm", "activation", "add", "dequantize", "requantize"):
        return in_shape
    if kind == "pad_channels":
        return (in_shape[0] + int(op.attrs["pad"]),) + tuple(in_shape[1:])
    if kind in ("bitserial_conv", "conv"):
        c, h, w = in_shape
        k = int(op.attrs["kernel_size"])
        stride = int(op.attrs["stride"])
        padding = int(op.attrs["padding"])
        if kind == "conv":
            filters = int(op.attrs["weight"].shape[0]) if op.attrs.get("weight") is not None else op.out_shape[0]
        else:
            filters = int(np.asarray(op.attrs["indices"]).shape[0])
        oh = conv_output_size(h, k, stride, padding)
        ow = conv_output_size(w, k, stride, padding)
        return (filters, oh, ow)
    if kind == "bitserial_linear":
        return (int(np.asarray(op.attrs["indices"]).shape[0]),)
    if kind == "linear":
        if op.attrs.get("weight") is not None:
            return (int(op.attrs["weight"].shape[0]),)
        return None
    if kind == "pool":
        if op.attrs["pool"] == "global_avg":
            return (in_shape[0],)
        k = int(op.attrs["kernel"])
        c, h, w = in_shape
        return (c, h // k, w // k)
    if kind == "flatten":
        return (int(np.prod(in_shape, dtype=np.int64)),)
    return None


def _quant_dtype(params) -> np.dtype:
    return np.dtype(np.uint8 if params.bitwidth <= 8 else np.uint16)


def _propagate_dtype(op, in_dtypes: List[np.dtype]) -> Optional[np.dtype]:
    """The dtype ``op`` produces (mirrors the executor's step semantics)."""
    kind = op.kind
    if kind in ("quantize", "requantize"):
        params = op.attrs["out_params"] if kind == "requantize" else op.attrs["params"]
        if params is None:
            return None
        return _quant_dtype(params)
    if kind in ("pad_channels", "batchnorm", "activation", "flatten"):
        return in_dtypes[0]
    if kind == "pool":
        return in_dtypes[0] if op.attrs["pool"] == "max" else np.dtype(np.float64)
    if kind == "add":
        return np.result_type(*in_dtypes)
    if kind in ("conv", "linear"):
        if op.attrs.get("weight") is None:
            return None
        return np.result_type(in_dtypes[0], op.attrs["weight"].dtype)
    if kind in ("bitserial_conv", "bitserial_linear", "dequantize"):
        # Raw bit-serial accumulations and their epilogues are float at the
        # IR level (the plan backend's integer accumulation is internal).
        return np.dtype(np.float64)
    return None


def verify_program(program) -> Dict[str, int]:
    """Verify the IR's structural invariants; returns check counters.

    Checks, in order:

    * every op kind is in :data:`~repro.core.program.IR_OP_KINDS`;
    * **SSA** — each buffer is written by exactly one op, and never the
      program input;
    * **def-before-use** — every input buffer is the program input or a
      preceding op's output, and the program output is produced;
    * **shape propagation** — each op's recorded ``in_shape``/``out_shape``
      agree with its producer and with the shape its attrs imply;
    * **dtype propagation** (bound programs) — integer/float domains flow
      consistently: a ``quantize`` must consume float data, an
      integer-marked ``pool`` must consume integer data, ``batchnorm`` and
      ``add`` run in float;
    * **single-consumer claims** — every ``bitserial_*`` op feeds exactly
      one ``dequantize``/``requantize`` epilogue (what the plan backend's
      kernel fusion relies on).

    Raises :class:`VerificationError` naming the offending op on the first
    violation.
    """
    from repro.core.program import IR_OP_KINDS  # late: avoid import cycle

    def fail(op, index, message) -> None:
        label = f"op[{index}] {op.kind}" + (f" '{op.name}'" if op.name else "")
        raise VerificationError(f"IR verification failed at {label}: {message}")

    counters = {
        "ops": len(program.ops),
        "ssa_checks": 0,
        "shape_checks": 0,
        "dtype_checks": 0,
        "consumer_checks": 0,
    }
    defined = {program.input_id}
    shapes: Dict[int, Tuple[int, ...]] = {program.input_id: tuple(program.input_shape)}
    dtypes: Dict[int, Optional[np.dtype]] = {program.input_id: np.dtype(np.float64)}
    for index, op in enumerate(program.ops):
        if op.kind not in IR_OP_KINDS:
            fail(op, index, f"unknown op kind (IR_OP_KINDS: {', '.join(IR_OP_KINDS)})")
        if op.output in defined:
            fail(op, index, f"buffer b{op.output} is written more than once (SSA violation)")
        for buf in op.inputs:
            if buf not in defined:
                fail(op, index, f"reads buffer b{buf} before any op defines it")
        counters["ssa_checks"] += 1

        if op.inputs:
            produced = shapes[op.inputs[0]]
            if op.in_shape and tuple(op.in_shape) != produced:
                fail(
                    op, index,
                    f"records in_shape {tuple(op.in_shape)} but its input "
                    f"b{op.inputs[0]} has shape {produced}",
                )
            expected = _expected_out_shape(op, produced)
            if expected is not None and tuple(op.out_shape) != tuple(expected):
                fail(
                    op, index,
                    f"records out_shape {tuple(op.out_shape)} but the op "
                    f"implies {tuple(expected)}",
                )
            counters["shape_checks"] += 1

        if program.bound and op.inputs:
            in_dtypes = [dtypes.get(buf) for buf in op.inputs]
            if all(dt is not None for dt in in_dtypes):
                if op.kind == "quantize" and in_dtypes[0].kind != "f":
                    fail(op, index, f"quantize consumes non-float dtype {in_dtypes[0]}")
                if op.kind in ("batchnorm", "add") and any(dt.kind != "f" for dt in in_dtypes):
                    fail(op, index, f"{op.kind} consumes integer dtype {in_dtypes}")
                if (
                    op.kind == "pool"
                    and op.attrs.get("integer")
                    and in_dtypes[0].kind not in "ui"
                ):
                    fail(op, index, "integer-marked pool consumes a float buffer")
                counters["dtype_checks"] += 1
        dtypes[op.output] = (
            _propagate_dtype(op, [dtypes.get(buf) for buf in op.inputs])
            if program.bound and all(dtypes.get(buf) is not None for buf in op.inputs)
            else None
        )
        defined.add(op.output)
        shapes[op.output] = tuple(op.out_shape)

    if program.output_id not in defined:
        raise VerificationError(
            f"IR verification failed: program output b{program.output_id} "
            "is never produced"
        )

    consumers = _consumer_map(program.ops)
    for index, op in enumerate(program.ops):
        if op.kind not in ("bitserial_conv", "bitserial_linear"):
            continue
        users = consumers.get(op.output, [])
        if len(users) != 1 or users[0].kind not in ("dequantize", "requantize"):
            fail(
                op, index,
                f"must feed exactly one dequantize/requantize epilogue, has "
                f"{[u.kind for u in users]}",
            )
        counters["consumer_checks"] += 1
    return counters


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
@dataclass
class PassReport:
    """What one pass did: counters plus op counts before/after."""

    name: str
    stage: str
    counters: Dict[str, int] = field(default_factory=dict)
    ops_before: int = 0
    ops_after: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "stage": self.stage,
            "counters": {k: v for k, v in self.counters.items()},
            "ops_before": int(self.ops_before),
            "ops_after": int(self.ops_after),
        }


@dataclass
class PipelineReport:
    """The pipeline's run record, attached to the program it compiled.

    JSON-able via :meth:`to_dict`; :func:`repro.core.export.save_program`
    embeds it in the artifact header, so
    :func:`~repro.core.export.read_program_metadata` (and repository
    listings, and the serve ``/stats`` payload) all expose it header-only.
    """

    level: str
    passes: List[PassReport] = field(default_factory=list)
    verifier_runs: int = 0
    verifier_counters: Dict[str, int] = field(default_factory=dict)
    ops_before: int = 0
    ops_after: int = 0
    debug: bool = False
    # Effective-level surfacing (no silent downgrades): when a level cannot
    # fully engage on this host — O4 without a C compiler — ``fallback_reason``
    # names why and ``effective_level`` the level that actually ran.  The
    # executor updates the attached dict in place when it binds (a host
    # *with* a compiler re-binding a fallen-back artifact restores O4).
    fallback_reason: Optional[str] = None
    effective_level: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "effective_level": self.effective_level or self.level,
            "fallback_reason": self.fallback_reason,
            "passes": [p.to_dict() for p in self.passes],
            "verifier_runs": int(self.verifier_runs),
            "verifier_counters": dict(self.verifier_counters),
            "ops_before": int(self.ops_before),
            "ops_after": int(self.ops_after),
            "debug": bool(self.debug),
        }


def record_stage_report(program, report: Dict[str, Any]) -> None:
    """Merge a schedule/tune-stage pass report into the program's pipeline
    report (replacing a previous report of the same pass, so repeated
    executor binds never duplicate entries)."""
    pipeline = program.pipeline_report
    if pipeline is None:
        return
    passes = pipeline.setdefault("passes", [])
    for i, existing in enumerate(passes):
        if existing.get("name") == report.get("name"):
            passes[i] = report
            return
    passes.append(report)


def persistable_autotune(decisions: Dict[str, Any]) -> Dict[str, Any]:
    """The replayable core of an autotune decisions dict.

    Only the per-layer kernel winners persist — they are program
    properties, identical on any host, and identical whatever tile/shard
    overrides a particular bind used (so a later bind recording its report
    never changes them).  Tile and shard picks are host properties and stay
    out of artifacts: the per-candidate timings live on the executor's
    ``plan_info`` and in bench records, where they were measured.
    """
    return {
        "layers": {
            key: {"tap_gather": pick["tap_gather"], "encoder": pick["encoder"]}
            for key, pick in decisions["layers"].items()
        },
    }


def recorded_autotune(program) -> Optional[Dict[str, Any]]:
    """The decisions of the program's recorded ``autotune`` pass, if any.

    Stored by the executor in the pipeline report (and therefore in saved
    artifact headers), so a later bind replays them instead of re-tuning.
    """
    pipeline = program.pipeline_report
    if not pipeline:
        return None
    for entry in pipeline.get("passes", []):
        if entry.get("name") == "autotune":
            return entry.get("decisions")
    return None


def format_pipeline_report(program) -> str:
    """Human-readable pipeline report of a compiled program.

    One line per pass (graph, schedule and tune stages), plus the verifier
    tally and — when an executor has bound the program — the memory plan's
    arena size and the autotuner's per-layer picks.  This is what
    ``examples/quickstart.py`` prints after compiling.
    """
    pipeline = program.pipeline_report
    if pipeline is None:
        return "  (no pipeline report: program predates the pass manager)"
    lines = [
        f"  pipeline level {pipeline['level']}: "
        f"{pipeline['ops_before']} ops -> {pipeline['ops_after']} ops, "
        f"verifier ran {pipeline['verifier_runs']}x"
    ]
    for entry in pipeline.get("passes", []):
        counters = ", ".join(f"{k}={v}" for k, v in entry.get("counters", {}).items()
                             if not isinstance(v, dict))
        lines.append(f"    [{entry['stage']:<8}] {entry['name']}: {counters}")
    plan = (program.plan_counters or {})
    if plan.get("arena_bytes"):
        lines.append(
            f"    arena {plan['arena_bytes'] / 1024:.0f} KiB, "
            f"{plan['steps']} steps ({plan['steps_fused']} fused away), "
            f"tile {plan['tile']}"
        )
    tuned = plan.get("autotune") or {}
    for layer, pick in tuned.get("layers", {}).items():
        lines.append(
            f"    autotune {layer}: gather={pick['tap_gather']} "
            f"encoder={pick['encoder']}"
        )
    if tuned:
        lines.append(
            f"    autotune tile={tuned['tile']['chosen']} "
            f"shards={tuned['n_shards']['chosen']} ({tuned['trials']} trials)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# PassManager
# ---------------------------------------------------------------------------
class PassManager:
    """Validates a level/pass selection and runs the graph stage.

    Parameters
    ----------
    level:
        One of :data:`OPT_LEVELS`.  Unknown names raise :class:`ValueError`
        listing the valid levels (misconfiguration used to fall through to
        defaults silently).
    passes:
        Optional explicit graph-pass selection (registered names; execution
        stays in registration order).  Unknown names raise, listing the
        registered passes.  ``None`` runs every graph pass the level enables.
    debug:
        Run the verifier between passes (defaults to the
        ``REPRO_PIPELINE_DEBUG`` environment variable).  The exit
        verification always runs.
    """

    def __init__(
        self,
        level: str = "O2",
        passes: Optional[Sequence[str]] = None,
        debug: Optional[bool] = None,
    ):
        _level_index(level)
        self.level = level
        if passes is not None:
            unknown = [name for name in passes if name not in PASS_REGISTRY]
            if unknown:
                raise ValueError(
                    f"unknown pass name(s) {unknown}; registered passes: "
                    f"{', '.join(PASS_REGISTRY)}"
                )
            not_graph = [
                name for name in passes if PASS_REGISTRY[name].stage != "graph"
            ]
            if not_graph:
                raise ValueError(
                    f"pass(es) {not_graph} are not graph-stage passes and "
                    "cannot be selected explicitly; schedule/tune stages are "
                    "driven by the optimization level "
                    f"({', '.join(OPT_LEVELS)})"
                )
        self.passes = None if passes is None else list(passes)
        if debug is None:
            debug = os.environ.get("REPRO_PIPELINE_DEBUG", "") not in ("", "0")
        self.debug = bool(debug)

    def enabled(self, stage: str) -> List[Pass]:
        """The passes of ``stage`` this manager's level (and explicit
        selection, for the graph stage) enables, in execution order."""
        selected = []
        for pass_ in registered_passes(stage):
            if self.passes is not None and stage == "graph":
                if pass_.name in self.passes:
                    selected.append(pass_)
            elif level_enables(self.level, pass_.level):
                selected.append(pass_)
        return selected

    def run(self, program) -> PipelineReport:
        """Run the graph stage on ``program`` and attach the report.

        Graph passes rewrite bound programs only (structural programs keep
        the canonical op stream so MCU cost attribution stays per-layer);
        the verifier runs on both.  The report — and the level — are
        attached to the program (``program.opt_level``,
        ``program.pipeline_report``); the executor appends its
        schedule/tune-stage reports to the same record when it binds.
        """
        report = PipelineReport(
            level=self.level, ops_before=len(program.ops), debug=self.debug
        )
        if self.level == "O4":
            # Compiler probe at compile time: O4 needs a host C compiler to
            # build the native backend.  Record the fallback here (and warn
            # once) so ``compile_network(level="O4")`` reports the effective
            # level immediately — the executor still retries at bind time,
            # where a populated build cache can satisfy O4 without one.
            from repro.core.codegen.build import find_compiler

            if find_compiler() is None:
                report.fallback_reason = "no_compiler"
                report.effective_level = "O3"
                warnings.warn(
                    "O4 requested but no C compiler found; compiling at the "
                    "effective level O3 (plan backend). Install gcc/cc to "
                    "enable the native backend.",
                    RuntimeWarning,
                    stacklevel=2,
                )
        graph_passes = self.enabled("graph") if program.bound else []
        for pass_ in graph_passes:
            ops_before = len(program.ops)
            counters = pass_.fn(program)
            report.passes.append(
                PassReport(
                    name=pass_.name,
                    stage=pass_.stage,
                    counters=counters,
                    ops_before=ops_before,
                    ops_after=len(program.ops),
                )
            )
            if self.debug:
                report.verifier_counters = verify_program(program)
                report.verifier_runs += 1
        # The exit verification always runs — a broken pass (or a broken
        # lowering) fails here, at compile time, with the op named.
        report.verifier_counters = verify_program(program)
        report.verifier_runs += 1
        report.ops_after = len(program.ops)
        program.optimized = bool(graph_passes)
        program.opt_level = self.level
        program.pipeline_report = report.to_dict()
        return report


# ---------------------------------------------------------------------------
# O3: compile-time kernel autotuning
# ---------------------------------------------------------------------------
def _synthetic_input(op, conv_plan, n: int, rng) -> np.ndarray:
    """A validated synthetic activation batch for one bit-serial step."""
    dtype = np.uint8 if conv_plan.act_bitwidth <= 8 else np.uint16
    if op.kind == "bitserial_linear":
        shape = (n, conv_plan.in_channels)
    else:
        shape = (n, conv_plan.in_channels) + tuple(op.in_shape[1:])
    return rng.integers(0, 1 << conv_plan.act_bitwidth, size=shape, dtype=dtype)


def _time_call(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _step_decision_keys(tuned_steps) -> List[str]:
    """Stable per-step decision keys: the op name, index-disambiguated."""
    keys: List[str] = []
    seen: set = set()
    for index, step in enumerate(tuned_steps):
        name = step.op.name or f"step{index}"
        key = name if name not in seen else f"{name}#{index}"
        seen.add(key)
        keys.append(key)
    return keys


def _reuse_recorded_decisions(
    tuned_steps,
    keys: List[str],
    recorded: Dict[str, Any],
    default_tile: int,
    tune_shards: bool,
    fixed_shards: Optional[int],
) -> Dict[str, Any]:
    """Apply a previous bind's recorded kernel winners instead of
    re-benchmarking.

    Only the per-layer kernel winners replay — they are properties of the
    *program* (indices, geometry, LUT).  The tile and shard choices are
    properties of the *host*, so a replayed bind keeps the caller's/
    backend-heuristic tile and the per-core shard default instead of
    whatever the tuning machine measured (an artifact tuned on a 1-CPU CI
    box must not pin a 16-core server to one shard, nor vice versa).
    Re-binding a tuned program — a serving worker loading an artifact, a
    respawn, a second executor — is therefore deterministic per host and
    pays no timing runs.
    """
    for key, step in zip(keys, tuned_steps):
        conv_plan = getattr(step.plan, "conv_plan", step.plan)
        pick = recorded["layers"][key]
        conv_plan.tap_gather = pick["tap_gather"]
        conv_plan.encoder = pick["encoder"]
        conv_plan._autotuned = True
    cpus = os.cpu_count() or 1
    default_shards = 1 if cpus < 2 else min(cpus, 8)
    if tune_shards:
        shards = {"chosen": int(default_shards), "basis": "per-core"}
    else:
        chosen = fixed_shards if fixed_shards is not None else default_shards
        shards = {"chosen": int(chosen), "basis": "fixed"}
    return {
        "layers": {key: dict(recorded["layers"][key]) for key in keys},
        "layers_tuned": len(keys),
        "trials": 0,
        "reused": True,
        "tile": {"chosen": int(default_tile), "basis": "heuristic"},
        "n_shards": shards,
    }


def autotune_schedule(
    program,
    steps,
    default_tile: int,
    active_bits: Optional[int] = None,
    tune_tile: bool = True,
    tune_shards: bool = True,
    fixed_shards: Optional[int] = None,
    recorded: Optional[Dict[str, Any]] = None,
    reps: int = 2,
    seed: int = 0,
) -> Dict[str, Any]:
    """Empirically tune the bound schedule's kernel plans (the ``O3`` pass).

    For every bit-serial step, micro-benchmarks the candidate kernel
    specializations — stage-2 tap-gather schedule (``fused`` wide gather vs
    ``per_tap`` narrow cache-hot gather, hoisted convolutions only) and
    address encoder (``packbits`` bit transpose vs the ``bitmul`` uint64
    mask-multiply, full 8-channel groups only) — on synthetic in-range
    activations, applies each layer's winner to its (executor-private) plan,
    and marks the plan tuned so the heuristic specialization pass leaves it
    alone.  Then sweeps micro-batch tile candidates around ``default_tile``
    (whole-schedule per-image cost) and measures thread-scaling of the most
    expensive step to pick the shard count.

    Every kernel candidate computes the exact same accumulation order, so
    results are bitwise identical across choices — asserted on the spot
    during tuning — and shard counts are bitwise-invariant by the planner's
    whole-tile splitting; the tile choice only affects the float convs'
    BLAS reduction order, the same caveat the heuristic auto-tile always
    carried.  Tuning can therefore never change predictions.

    Returns a JSON-able decisions dict (per-layer winners with measured
    per-candidate times, the tile sweep, the shard decision, and the total
    trial count) that the executor surfaces through ``plan_info`` and
    persists — with the per-layer winners — in the pipeline report, so a
    later bind of the same program (``recorded=`` that report's decisions)
    replays the winners deterministically instead of re-benchmarking.
    """
    rng = np.random.default_rng(seed)
    decisions: Dict[str, Any] = {"layers": {}, "trials": 0}
    tuned_steps = [s for s in steps if getattr(s, "plan", None) is not None]
    keys = _step_decision_keys(tuned_steps)
    if recorded and all(key in (recorded.get("layers") or {}) for key in keys):
        return _reuse_recorded_decisions(
            tuned_steps, keys, recorded, default_tile, tune_shards, fixed_shards,
        )

    bench_n = max(1, min(int(default_tile), 8))
    step_costs: List[Tuple[float, Any, np.ndarray]] = []
    for index, step in enumerate(tuned_steps):
        plan = step.plan
        conv_plan = getattr(plan, "conv_plan", plan)
        op = step.op
        x = _synthetic_input(op, conv_plan, bench_n, rng)
        encoders = ["packbits"]
        if (
            conv_plan.group_size == 8
            and conv_plan.act_bitwidth <= 8
            and sys.byteorder == "little"
        ):
            encoders.append("bitmul")
        gathers = ["fused", "per_tap"] if conv_plan.hoist_padding else [conv_plan.tap_gather]
        timings: Dict[str, float] = {}
        baseline = None
        best = None
        for gather in gathers:
            for encoder in encoders:
                conv_plan.tap_gather = gather
                conv_plan.encoder = encoder
                scratch: dict = {}
                call = lambda: plan(  # noqa: E731 - tight benchmark closure
                    x, active_bits=active_bits, validated=True, scratch=scratch
                )
                out = call()  # warm-up (allocates scratch, caches borders)
                # The invariant autotuning rests on: every candidate is
                # bitwise identical.  Check it right here, per layer.
                if baseline is None:
                    baseline = np.array(out, copy=True)
                else:
                    np.testing.assert_array_equal(out, baseline)
                elapsed = _time_call(call, reps)
                label = f"{gather}/{encoder}" if len(gathers) > 1 else encoder
                timings[label] = elapsed
                decisions["trials"] += 1 + reps
                if best is None or elapsed < best[0]:
                    best = (elapsed, gather, encoder)
        conv_plan.tap_gather = best[1]
        conv_plan.encoder = best[2]
        conv_plan._autotuned = True
        decisions["layers"][keys[index]] = {
            "kind": op.kind,
            "tap_gather": best[1],
            "encoder": best[2],
            "candidate_ms": {k: round(v * 1e3, 4) for k, v in timings.items()},
        }
        step_costs.append((best[0], step, x))

    # -- tile sweep: whole-schedule per-image cost at each candidate ---------
    chosen_tile = int(default_tile)
    tile_sweep: Dict[str, float] = {}
    if tune_tile and tuned_steps:
        candidates = sorted({max(1, default_tile // 2), int(default_tile),
                             min(64, default_tile * 2)})
        best_tile = None
        for tile in candidates:
            total = 0.0
            for _, step, _x in step_costs:
                plan = step.plan
                conv_plan = getattr(plan, "conv_plan", plan)
                x = _synthetic_input(step.op, conv_plan, tile, rng)
                scratch: dict = {}
                call = lambda: plan(  # noqa: E731
                    x, active_bits=active_bits, validated=True, scratch=scratch
                )
                call()  # warm-up at this tile
                total += _time_call(call, 1)
                decisions["trials"] += 2
            per_image = total / tile
            tile_sweep[str(tile)] = round(per_image * 1e3, 4)
            if best_tile is None or per_image < best_tile[0]:
                best_tile = (per_image, tile)
        chosen_tile = best_tile[1]
    decisions["tile"] = {"chosen": int(chosen_tile), "candidate_ms_per_image": tile_sweep}
    if int(chosen_tile) != int(default_tile) and any(
        step.op is not None and step.op.kind in ("conv", "linear") for step in steps
    ):
        # Honest numerics surfacing: kernel-variant and shard winners are
        # bitwise-invariant, but a retuned *tile* re-chunks the float
        # conv/linear steps and therefore reorders their BLAS reductions.
        # Flag it in the decisions (and thus plan_info["autotune"]) instead
        # of leaving the caveat to a docs footnote.
        decisions["numerics"] = "tile_reorder"

    # -- shard decision: thread-scaling of the most expensive step -----------
    cpus = os.cpu_count() or 1
    default_shards = 1 if cpus < 2 else min(cpus, 8)
    if not tune_shards:
        # The caller fixed the shard count; record what actually runs.
        chosen = fixed_shards if fixed_shards is not None else default_shards
        shards = {"chosen": int(chosen), "basis": "fixed"}
    elif cpus < 2 or not step_costs:
        shards = {"chosen": 1, "basis": "single-core"}
    else:
        from concurrent.futures import ThreadPoolExecutor

        _, step, x = max(step_costs, key=lambda item: item[0])
        plan = step.plan
        k = default_shards
        scratches = [dict() for _ in range(k)]
        calls = [
            (lambda s=s: plan(x, active_bits=active_bits, validated=True, scratch=s))
            for s in scratches
        ]
        for call in calls:
            call()  # warm every scratch
        start = time.perf_counter()
        for call in calls:
            call()
        serial = time.perf_counter() - start
        with ThreadPoolExecutor(max_workers=k) as threads:
            start = time.perf_counter()
            futures = [threads.submit(call) for call in calls]
            for future in futures:
                future.result()
            parallel = time.perf_counter() - start
        decisions["trials"] += 3 * k
        scaling = serial / parallel if parallel > 0 else 1.0
        chosen = default_shards if scaling >= 1.2 else 1
        shards = {
            "chosen": int(chosen),
            "basis": "measured",
            "thread_scaling": round(scaling, 2),
        }
    decisions["n_shards"] = shards
    decisions["layers_tuned"] = len(decisions["layers"])
    return decisions
