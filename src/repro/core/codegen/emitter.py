"""Deterministic C99 emission of a planned schedule.

The emitter consumes exactly what the executor already computed ahead of
time — the bound schedule (``Executor._bind_plan``'s steps, carrying the
compiled kernel plans and the autotuner's recorded winners), the
:class:`~repro.core.memory_plan.ExecutionPlan` (fused steps, static arena
offsets, buffer specs) — and lowers the native-eligible portion to portable
C99.  Nothing is re-derived: arena offsets are baked into the source as
integer constants, each fused chain becomes one per-sample loop nest, and
every per-layer constant (bit-weighted sub-tables, stage-2 gather columns,
hoisted border tensors, epilogue ``α``/``β``) is serialized into one binary
*consts blob* passed to the library at call time — keeping the C text small
and byte-identical across hosts with the same program.

**Bit-exactness contract.**  A step is native-eligible only when its C
lowering provably reproduces the NumPy plan backend bit for bit:

* Bit-serial kernel-plan steps qualify when the plan accumulates in
  *integers* (``ConvKernelPlan.integer``): integer addition is associative,
  so the C loop nest is free to pick its own order; only the float epilogue
  (``α·acc + β`` → rint → clip → cast) must — and does — mirror the exact
  ufunc sequence of ``ConvKernelPlan._apply_epilogue``.
* Elementwise glue (quantize, pad_channels, batchnorm, relu/relu6, integer
  max-pool, flatten, same-dtype add) qualifies because each NumPy ufunc in
  the chain is a per-element operation with a direct C equivalent —
  including the sign-of-zero/NaN corner cases (``np.maximum(x, 0)`` returns
  ``+0.0`` for ``x = -0.0``; ``np.clip`` *keeps* ``-0.0``), which the
  emitted expressions reproduce literally.
* Float convolutions (BLAS reduction order), avg/global-avg pools (NumPy's
  pairwise mean) and anything non-eligible stay on the NumPy plan path; the
  schedule interleaves native segments with plan steps.

Maximal runs of eligible steps become *segments*, each a C function

.. code-block:: c

    void repro_seg_<k>(const unsigned char* consts, unsigned char* arena,
                       unsigned char* scratch, const void* const* ext, long n);

reading/writing buffers at their planned arena offsets (sample ``i`` of
buffer ``b`` lives at ``arena + slot(b).offset + i * sample_nbytes(b)`` —
exactly the layout of the plan backend's arena views), with non-arena
buffers (the program input, float-conv heap outputs) passed via ``ext``.

``standalone=True`` (the MCU bundle) instead lowers *every* step — float
convs, linears and average pools get straightforward C loop nests that are
numerically close but **not** bitwise (BLAS/pairwise-mean order) — into a
single segment plus a ``repro_net_run(input, output)`` entry with static
arena/scratch, and expects the consts blob linked in as ``repro_consts``
(see :mod:`repro.mcu.bundle`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitserial import active_bit_positions
from repro.core.memory_plan import ExecutionPlan, _chain_groups

#: Alignment of consts-blob entries and scratch allocations (cache line).
_ALIGN = 64

_CTYPES = {
    "|u1": "uint8_t",
    "<u2": "uint16_t",
    "<u4": "uint32_t",
    "<u8": "uint64_t",
    "|i1": "int8_t",
    "<i2": "int16_t",
    "<i4": "int32_t",
    "<i8": "int64_t",
    "<f4": "float",
    "<f8": "double",
}

#: Matching unsigned type for wraparound-defined signed arithmetic.
_UNSIGNED = {
    "int8_t": "uint8_t",
    "int16_t": "uint16_t",
    "int32_t": "uint32_t",
    "int64_t": "uint64_t",
}


class CodegenUnsupported(RuntimeError):
    """The schedule (or one of its steps) cannot be lowered to C."""


def _ctype(dtype) -> str:
    code = np.dtype(dtype).str
    if code not in _CTYPES:
        raise CodegenUnsupported(f"no C type for dtype {np.dtype(dtype)}")
    return _CTYPES[code]


def _hexf(value) -> str:
    """A double constant as a C99 hexadecimal float literal (bit-exact)."""
    return float(value).hex()


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SegmentSpec:
    """One emitted segment: plan-step range, ext buffers, covered outputs."""

    name: str
    start: int  # first plan-step index covered (inclusive)
    stop: int  # one past the last plan-step index covered
    ext: Tuple[int, ...]  # buffer ids passed via the ext pointer table
    outputs: Tuple[int, ...]  # covered step outputs (arena views to register)


@dataclass
class EmittedProgram:
    """The emitter's output: source text, consts blob, segment table."""

    source: str
    consts: bytes
    segments: List[SegmentSpec]
    scratch_bytes: int
    counters: Dict[str, int] = field(default_factory=dict)
    entry: Optional[str] = None  # standalone entry point name

    @property
    def source_sha256(self) -> str:
        return hashlib.sha256(self.source.encode("utf-8")).hexdigest()

    @property
    def consts_sha256(self) -> str:
        return hashlib.sha256(self.consts).hexdigest()


class _Consts:
    """The binary constants blob: aligned, deduplicated array appends."""

    def __init__(self):
        self._blob = bytearray()
        self._index: Dict[Tuple, int] = {}

    def add(self, array: np.ndarray) -> int:
        array = np.ascontiguousarray(array)
        data = array.tobytes()
        key = (array.dtype.str, array.shape, hashlib.sha256(data).digest())
        offset = self._index.get(key)
        if offset is None:
            pad = _align(len(self._blob)) - len(self._blob)
            self._blob.extend(b"\x00" * pad)
            offset = len(self._blob)
            self._blob.extend(data)
            self._index[key] = offset
        return offset

    def bytes(self) -> bytes:
        return bytes(self._blob)


class _Scratch:
    """Per-plan-step scratch allocator; the emitter keeps the max watermark."""

    def __init__(self):
        self.peak = 0
        self._cur = 0

    def reset(self):
        self._cur = 0

    def alloc(self, nbytes: int) -> int:
        offset = _align(self._cur)
        self._cur = offset + int(nbytes)
        self.peak = max(self.peak, self._cur)
        return offset


class _Fn:
    """A C function under construction (indentation-tracking line buffer)."""

    def __init__(self, name: str, signature: str):
        self.name = name
        self.lines: List[str] = [signature + " {"]
        self._indent = 1

    def line(self, text: str = ""):
        self.lines.append("    " * self._indent + text if text else "")

    def open(self, text: str):
        self.line(text)
        self._indent += 1

    def close(self):
        self._indent -= 1
        self.line("}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n}\n"


# Glue kinds with a bit-exact C lowering (further conditions in
# `_stage_supported`); kernel-plan steps are handled separately.
_HOST_GLUE = frozenset(
    {"quantize", "pad_channels", "batchnorm", "activation", "pool", "flatten", "add"}
)
# Additional kinds lowered only in standalone (tolerance, not bitwise) mode.
_STANDALONE_ONLY = frozenset({"conv", "linear"})


class Emitter:
    def __init__(
        self,
        program,
        steps: Sequence,
        exec_plan: ExecutionPlan,
        active_bits: Optional[int] = None,
        standalone: bool = False,
    ):
        self.program = program
        self.steps = list(steps)
        self.plan = exec_plan
        self.active_bits = active_bits
        self.standalone = standalone
        groups = _chain_groups(self.steps, program)
        if len(groups) != len(exec_plan.steps):
            raise CodegenUnsupported(
                "bound schedule and execution plan disagree on fusion groups"
            )
        self.runs = [self.steps[first : last + 1] for first, last in groups]
        self.consts = _Consts()
        self.scratch = _Scratch()
        self._ext_order: List[int] = []  # standalone: module-wide ext table

    # -- eligibility -----------------------------------------------------------
    def _stage_supported(self, bound) -> bool:
        op = bound.op
        if bound.plan is not None:
            conv_plan = getattr(bound.plan, "conv_plan", bound.plan)
            in_spec = self.plan.specs.get(bound.inputs[0])
            try:
                out_ct = _ctype(
                    conv_plan.requant[2] if conv_plan.requant is not None else np.float64
                )
                _ctype(conv_plan.partial_dtype)
                _ctype(conv_plan.acc_dtype)
            except CodegenUnsupported:
                return False
            return bool(
                conv_plan.integer
                and bound.validated
                and conv_plan.mode in ("direct", "precompute")
                and in_spec is not None
                and in_spec.dtype.kind == "u"
                and conv_plan.group_size <= 16
                and out_ct is not None
            )
        kind = op.kind
        if self.standalone and kind in _STANDALONE_ONLY:
            return True
        if kind not in _HOST_GLUE:
            return False
        in_specs = [self.plan.specs.get(b) for b in op.inputs]
        out_spec = self.plan.specs.get(op.output)
        if out_spec is None or any(s is None for s in in_specs):
            return False
        try:
            _ctype(out_spec.dtype)
            for s in in_specs:
                _ctype(s.dtype)
        except CodegenUnsupported:
            return False
        if kind == "quantize":
            return in_specs[0].dtype == np.float64
        if kind == "batchnorm":
            return in_specs[0].dtype == np.float64
        if kind == "activation":
            return op.attrs.get("fn") in ("relu", "relu6")
        if kind == "pool":
            if op.attrs["pool"] == "max":
                return in_specs[0].dtype.kind in "iu"
            return self.standalone  # avg/global_avg: NumPy pairwise mean
        if kind == "add":
            return in_specs[0].dtype == in_specs[1].dtype == out_spec.dtype
        return True  # pad_channels, flatten

    def _step_native(self, index: int) -> bool:
        pstep = self.plan.steps[index]
        if not self.standalone and pstep.placement not in ("arena", "view"):
            return False
        if not all(self._stage_supported(b) for b in self.runs[index]):
            return False
        # Per-sample hazard: the C loop runs all stages for sample i before
        # touching sample i+1, while the NumPy plan runs each stage for the
        # whole tile.  When the output took over an input's arena slot
        # (in-place handoff) *and* has a larger per-sample stride, writing
        # sample i would overwrite sample i+1 of the aliased input before it
        # is read — keep such steps on the plan path.  (tile=1 — the
        # standalone bundle — has no second sample, so it is always safe.)
        if not self.standalone and self.plan.tile > 1:
            slot = self._slot(pstep.output)
            if slot is not None and slot.reused_from is not None:
                out_nbytes = self._sample_nbytes(pstep.output)
                for buf in pstep.inputs:
                    if (
                        self.plan.storage.get(buf) == slot.reused_from
                        and out_nbytes > self._sample_nbytes(buf)
                    ):
                        return False
        return True

    # -- buffer addressing -----------------------------------------------------
    def _sample_nbytes(self, buf: int) -> int:
        spec = self.plan.specs[buf]
        return int(np.prod(spec.shape, dtype=np.int64)) * spec.dtype.itemsize

    def _slot(self, buf: int):
        return self.plan.slots.get(self.plan.storage.get(buf, buf))

    def _buf_ptr(self, buf: int, ext_index: Dict[int, int], writable: bool) -> str:
        """C expression for the sample-``i`` base pointer of ``buf``."""
        ct = _ctype(self.plan.specs[buf].dtype)
        qual = "" if writable else "const "
        slot = self._slot(buf)
        if slot is not None:
            return (
                f"({qual}{ct}*)(arena + {slot.offset} + "
                f"(size_t)i * {self._sample_nbytes(buf)})"
            )
        j = ext_index[buf]
        return f"({qual}{ct}*)((const unsigned char*)ext[{j}] + (size_t)i * {self._sample_nbytes(buf)})"

    # -- emission --------------------------------------------------------------
    def emit(self) -> EmittedProgram:
        native = [self._step_native(i) for i in range(len(self.plan.steps))]
        if self.standalone and not all(native):
            bad = next(
                b.op.kind
                for i, run in enumerate(self.runs)
                if not native[i]
                for b in run
                if not self._stage_supported(b)
            )
            raise CodegenUnsupported(
                f"standalone bundle cannot lower op kind '{bad}' to C"
            )

        segments: List[Tuple[int, int]] = []
        i = 0
        while i < len(native):
            if native[i]:
                j = i
                while j + 1 < len(native) and native[j + 1]:
                    j += 1
                segments.append((i, j + 1))
                i = j + 1
            else:
                i += 1

        fns: List[str] = []
        specs: List[SegmentSpec] = []
        native_steps = 0
        for k, (start, stop) in enumerate(segments):
            name = f"repro_seg_{k}"
            ext: List[int] = []
            produced = set()
            for pi in range(start, stop):
                for buf in self.plan.steps[pi].inputs:
                    if (
                        self._slot(buf) is None
                        and buf not in produced
                        and buf not in ext
                    ):
                        ext.append(buf)
                produced.add(self.plan.steps[pi].output)
            outputs = []
            if self.standalone:
                # Heap/output placements also flow through ext (static
                # buffers / the entry's output parameter).
                for pi in range(start, stop):
                    out = self.plan.steps[pi].output
                    if self._slot(out) is None and out not in ext:
                        ext.append(out)
            for pi in range(start, stop):
                out = self.plan.steps[pi].output
                if self._slot(out) is not None:
                    outputs.append(out)
            ext_index = {buf: j for j, buf in enumerate(ext)}
            fn = _Fn(
                name,
                f"void {name}(const unsigned char* consts, unsigned char* arena,\n"
                f"        unsigned char* scratch, const void* const* ext, long n)",
            )
            fn.line("(void)consts; (void)arena; (void)scratch; (void)ext;")
            for pi in range(start, stop):
                self.scratch.reset()
                self._emit_plan_step(fn, pi, ext_index)
                native_steps += 1
            fns.append(fn.text())
            specs.append(
                SegmentSpec(
                    name=name,
                    start=start,
                    stop=stop,
                    ext=tuple(ext),
                    outputs=tuple(outputs),
                )
            )
        header = [
            "/* Generated by repro.core.codegen — planned schedule lowered to C99.",
            " * Bit-exact with the NumPy plan backend for every emitted step",
            " * (integer kernels; float epilogues mirror the ufunc sequence).",
            " * Compile with -ffp-contract=off; see core/codegen/build.py. */",
            "#include <stdint.h>",
            "#include <string.h>",
            "#include <math.h>",
            "",
        ]
        body = "\n".join(fns)
        source = "\n".join(header) + body
        entry = None
        if self.standalone:
            source += self._emit_standalone_entry(specs)
            entry = "repro_net_run"
        counters = {
            "segments": len(specs),
            "native_steps": native_steps,
            "steps": len(self.plan.steps),
            "source_bytes": len(source.encode("utf-8")),
        }
        return EmittedProgram(
            source=source,
            consts=self.consts.bytes(),
            segments=specs,
            scratch_bytes=self.scratch.peak,
            counters=counters,
            entry=entry,
        )

    def _emit_standalone_entry(self, specs: List[SegmentSpec]) -> str:
        assert len(specs) == 1, "standalone mode emits exactly one segment"
        seg = specs[0]
        lines = [
            "",
            "extern const unsigned char repro_consts[];",
            f"static unsigned char repro_arena[{max(self.plan.arena_bytes, 1)}];",
            f"static unsigned char repro_scratch[{max(self.scratch.peak, 1)}];",
        ]
        heap_names: Dict[int, str] = {}
        for buf in seg.ext:
            if buf in (self.plan.input_id, self.plan.output_id):
                continue
            heap_names[buf] = f"repro_heap_{buf}"
            lines.append(
                f"static unsigned char {heap_names[buf]}[{self._sample_nbytes(buf)}];"
            )
        lines.append("")
        lines.append("void repro_net_run(const double* input, double* output) {")
        lines.append(f"    const void* ext[{max(len(seg.ext), 1)}];")
        for j, buf in enumerate(seg.ext):
            if buf == self.plan.input_id:
                lines.append(f"    ext[{j}] = (const void*)input;")
            elif buf == self.plan.output_id:
                lines.append(f"    ext[{j}] = (const void*)output;")
            else:
                lines.append(f"    ext[{j}] = (const void*){heap_names[buf]};")
        lines.append(
            f"    {seg.name}(repro_consts, repro_arena, repro_scratch, ext, 1);"
        )
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- per-step emission -----------------------------------------------------
    def _emit_plan_step(self, fn: _Fn, pi: int, ext_index: Dict[int, int]):
        pstep = self.plan.steps[pi]
        run = self.runs[pi]
        if pstep.placement == "view" and len(run) == 1 and run[0].op.kind == "flatten":
            fn.line(f"/* step {pi}: flatten b{pstep.output} — arena view, no code */")
            return
        fn.line(f"/* step {pi}: {'+'.join(pstep.fused) or pstep.kind} "
                f"-> b{pstep.output} */")
        fn.open("for (long i = 0; i < n; ++i) {")
        env: Dict[int, str] = {}
        declared: Dict[int, str] = {}

        def ptr(buf: int, writable: bool = False) -> str:
            if buf in env:
                return env[buf]
            if buf not in declared:
                var = f"b{buf}"
                fn.line(f"{'' if writable else 'const '}{_ctype(self.plan.specs[buf].dtype)}* "
                        f"{var} = {self._buf_ptr(buf, ext_index, writable)};")
                declared[buf] = var
            return declared[buf]

        last = len(run) - 1
        for si, bound in enumerate(run):
            op = bound.op
            tag = f"s{pi}_{si}"
            out_buf = bound.output
            if op.kind == "flatten" and si != last:
                env[out_buf] = ptr(op.inputs[0])
                continue
            srcs = [ptr(b) for b in op.inputs]
            if si == last:
                dst = ptr(out_buf, writable=True)
            else:
                spec = self.plan.specs[out_buf]
                off = self.scratch.alloc(self._sample_nbytes(out_buf))
                var = f"t{out_buf}"
                fn.line(f"{_ctype(spec.dtype)}* {var} = "
                        f"({_ctype(spec.dtype)}*)(scratch + {off});")
                env[out_buf] = var
                dst = var
            if bound.plan is not None:
                self._emit_bitserial(fn, tag, bound, srcs[0], dst)
            else:
                self._emit_glue(fn, tag, op, srcs, dst)
            env[out_buf] = dst
        fn.close()

    # -- glue stages -----------------------------------------------------------
    def _emit_glue(self, fn: _Fn, tag: str, op, srcs: List[str], dst: str):
        kind = op.kind
        emit = getattr(self, f"_emit_{kind}")
        emit(fn, tag, op, srcs, dst)

    def _emit_quantize(self, fn, tag, op, srcs, dst):
        params = op.attrs["params"]
        lo = op.attrs.get("clip_lo", params.qmin)
        hi = op.attrs.get("clip_hi", params.qmax)
        count = int(np.prod(op.in_shape, dtype=np.int64))
        ct = _ctype(self.plan.specs[op.output].dtype)
        fn.open(f"for (long e = 0; e < {count}; ++e) {{")
        fn.line(f"double v = {srcs[0]}[e] / {_hexf(params.scale)};")
        fn.line("v = rint(v);")
        fn.line(f"v = v + {_hexf(params.zero_point)};")
        fn.line(f"if (v < {_hexf(lo)}) v = {_hexf(lo)};")
        fn.line(f"if (v > {_hexf(hi)}) v = {_hexf(hi)};")
        fn.line(f"{dst}[e] = ({ct})v;")
        fn.close()

    def _emit_pad_channels(self, fn, tag, op, srcs, dst):
        spec = self.plan.specs[op.output]
        ct = _ctype(spec.dtype)
        channels = int(op.in_shape[0])
        inner = int(np.prod(op.in_shape[1:], dtype=np.int64)) if len(op.in_shape) > 1 else 1
        total = int(np.prod(spec.shape, dtype=np.int64))
        value = op.attrs["value"]
        fn.line(f"memcpy({dst}, {srcs[0]}, {channels * inner} * sizeof({ct}));")
        fn.open(f"for (long e = {channels * inner}; e < {total}; ++e) {{")
        fn.line(f"{dst}[e] = ({ct}){value};")
        fn.close()

    def _emit_batchnorm(self, fn, tag, op, srcs, dst):
        attrs = op.attrs
        c = int(op.in_shape[0])
        hw = int(np.prod(op.in_shape[1:], dtype=np.int64))
        offs = {
            name: self.consts.add(np.asarray(attrs[name], dtype=np.float64).reshape(-1))
            for name in ("mean", "inv_std", "gamma", "beta")
        }
        for name, off in offs.items():
            fn.line(f"const double* {tag}_{name} = (const double*)(consts + {off});")
        fn.open(f"for (int c = 0; c < {c}; ++c) {{")
        fn.line(f"const double* s = {srcs[0]} + (size_t)c * {hw};")
        fn.line(f"double* d = {dst} + (size_t)c * {hw};")
        fn.line(f"double m = {tag}_mean[c], is = {tag}_inv_std[c], "
                f"ga = {tag}_gamma[c], be = {tag}_beta[c];")
        fn.open(f"for (long p = 0; p < {hw}; ++p) {{")
        fn.line("double v = s[p] - m;")
        fn.line("v = v * is;")
        fn.line("v = v * ga;")
        fn.line("v = v + be;")
        fn.line("d[p] = v;")
        fn.close()
        fn.close()

    def _emit_activation(self, fn, tag, op, srcs, dst):
        spec = self.plan.specs[op.output]
        ct = _ctype(spec.dtype)
        count = int(np.prod(spec.shape, dtype=np.int64))
        is_float = spec.dtype.kind == "f"
        fn.open(f"for (long e = 0; e < {count}; ++e) {{")
        fn.line(f"{ct} v = {srcs[0]}[e];")
        if op.attrs["fn"] == "relu6":
            # np.clip keeps -0.0 and propagates NaN: plain comparisons do too.
            zero = _hexf(0.0) if is_float else "0"
            six = _hexf(6.0) if is_float else "6"
            fn.line(f"if (v < {zero}) v = {zero};")
            fn.line(f"if (v > {six}) v = {six};")
        elif is_float:
            # np.maximum(x, 0.0) returns the *second* operand on ties, so
            # -0.0 maps to +0.0, while NaN propagates.
            fn.line(f"v = (v > {_hexf(0.0)}) ? v : ((v == v) ? {_hexf(0.0)} : v);")
        else:
            fn.line("if (v < 0) v = 0;")
        fn.line(f"{dst}[e] = v;")
        fn.close()

    def _emit_pool(self, fn, tag, op, srcs, dst):
        variant = op.attrs["pool"]
        in_spec = self.plan.specs[op.inputs[0]]
        ct_in = _ctype(in_spec.dtype)
        c, h, w = (int(d) for d in op.in_shape)
        if variant == "global_avg":
            # Standalone-only (NumPy's np.mean is pairwise; tolerance mode).
            fn.open(f"for (int c = 0; c < {c}; ++c) {{")
            fn.line("double s = 0.0;")
            fn.open(f"for (long p = 0; p < {h * w}; ++p) {{")
            fn.line(f"s += (double){srcs[0]}[(size_t)c * {h * w} + p];")
            fn.close()
            fn.line(f"{dst}[c] = s / {_hexf(h * w)};")
            fn.close()
            return
        k = int(op.attrs["kernel"])
        oh, ow = h // k, w // k
        fn.open(f"for (int c = 0; c < {c}; ++c) {{")
        fn.open(f"for (int y = 0; y < {oh}; ++y) {{")
        fn.open(f"for (int x = 0; x < {ow}; ++x) {{")
        if variant == "max":
            fn.line(f"{ct_in} m = {srcs[0]}[((size_t)c * {h} + y * {k}) * {w} + x * {k}];")
            fn.open(f"for (int dy = 0; dy < {k}; ++dy) {{")
            fn.open(f"for (int dx = 0; dx < {k}; ++dx) {{")
            fn.line(f"{ct_in} v = {srcs[0]}[((size_t)c * {h} + y * {k} + dy) * {w} "
                    f"+ x * {k} + dx];")
            fn.line("if (v > m) m = v;")
            fn.close()
            fn.close()
            fn.line(f"{dst}[((size_t)c * {oh} + y) * {ow} + x] = m;")
        else:  # avg (standalone-only)
            fn.line("double s = 0.0;")
            fn.open(f"for (int dy = 0; dy < {k}; ++dy) {{")
            fn.open(f"for (int dx = 0; dx < {k}; ++dx) {{")
            fn.line(f"s += (double){srcs[0]}[((size_t)c * {h} + y * {k} + dy) * {w} "
                    f"+ x * {k} + dx];")
            fn.close()
            fn.close()
            fn.line(f"{dst}[((size_t)c * {oh} + y) * {ow} + x] = s / {_hexf(k * k)};")
        fn.close()
        fn.close()
        fn.close()

    def _emit_flatten(self, fn, tag, op, srcs, dst):
        # Only reached as a chain's final (materialising) stage.
        ct = _ctype(self.plan.specs[op.output].dtype)
        count = int(np.prod(op.out_shape, dtype=np.int64))
        fn.line(f"memcpy({dst}, {srcs[0]}, {count} * sizeof({ct}));")

    def _emit_add(self, fn, tag, op, srcs, dst):
        spec = self.plan.specs[op.output]
        ct = _ctype(spec.dtype)
        count = int(np.prod(spec.shape, dtype=np.int64))
        fn.open(f"for (long e = 0; e < {count}; ++e) {{")
        if ct in _UNSIGNED:
            # NumPy integer add wraps; C signed overflow is UB — compute in
            # the matching unsigned type (defined wraparound) and cast back.
            ut = _UNSIGNED[ct]
            fn.line(f"{dst}[e] = ({ct})(({ut}){srcs[0]}[e] + ({ut}){srcs[1]}[e]);")
        else:
            fn.line(f"{dst}[e] = {srcs[0]}[e] + {srcs[1]}[e];")
        fn.close()

    # -- float kernels (standalone / tolerance mode only) ----------------------
    def _emit_conv(self, fn, tag, op, srcs, dst):
        attrs = op.attrs
        weight = np.asarray(attrs["weight"], dtype=np.float64)
        bias = attrs["bias"]
        stride, padding, groups = (
            int(attrs["stride"]), int(attrs["padding"]), int(attrs["groups"]),
        )
        f_out, cg, kh, kw = weight.shape
        c, h, w = (int(d) for d in op.in_shape)
        oh, ow = int(op.out_shape[1]), int(op.out_shape[2])
        w_off = self.consts.add(weight.reshape(-1))
        fn.line(f"const double* {tag}_w = (const double*)(consts + {w_off});")
        if bias is not None:
            b_off = self.consts.add(np.asarray(bias, dtype=np.float64).reshape(-1))
            fn.line(f"const double* {tag}_b = (const double*)(consts + {b_off});")
        fpg = f_out // groups
        fn.open(f"for (int f = 0; f < {f_out}; ++f) {{")
        fn.line(f"int g0 = (f / {fpg}) * {cg};")
        fn.open(f"for (int y = 0; y < {oh}; ++y) {{")
        fn.open(f"for (int x = 0; x < {ow}; ++x) {{")
        fn.line(f"double s = {f'{tag}_b[f]' if bias is not None else _hexf(0.0)};")
        fn.open(f"for (int ci = 0; ci < {cg}; ++ci) {{")
        fn.open(f"for (int ky = 0; ky < {kh}; ++ky) {{")
        fn.line(f"int yy = y * {stride} + ky - {padding};")
        fn.line(f"if (yy < 0 || yy >= {h}) continue;")
        fn.open(f"for (int kx = 0; kx < {kw}; ++kx) {{")
        fn.line(f"int xx = x * {stride} + kx - {padding};")
        fn.line(f"if (xx < 0 || xx >= {w}) continue;")
        fn.line(f"s += {srcs[0]}[((size_t)(g0 + ci) * {h} + yy) * {w} + xx] * "
                f"{tag}_w[(((size_t)f * {cg} + ci) * {kh} + ky) * {kw} + kx];")
        fn.close()
        fn.close()
        fn.close()
        fn.line(f"{dst}[((size_t)f * {oh} + y) * {ow} + x] = s;")
        fn.close()
        fn.close()
        fn.close()
        assert c == cg * groups

    def _emit_linear(self, fn, tag, op, srcs, dst):
        attrs = op.attrs
        weight = np.asarray(attrs["weight"], dtype=np.float64)
        bias = attrs["bias"]
        f_out, c = weight.shape
        w_off = self.consts.add(weight.reshape(-1))
        fn.line(f"const double* {tag}_w = (const double*)(consts + {w_off});")
        if bias is not None:
            b_off = self.consts.add(np.asarray(bias, dtype=np.float64).reshape(-1))
            fn.line(f"const double* {tag}_b = (const double*)(consts + {b_off});")
        fn.open(f"for (int f = 0; f < {f_out}; ++f) {{")
        fn.line("double s = 0.0;")
        fn.open(f"for (int ci = 0; ci < {c}; ++ci) {{")
        fn.line(f"s += {srcs[0]}[ci] * {tag}_w[(size_t)f * {c} + ci];")
        fn.close()
        fn.line(f"{dst}[f] = s{f' + {tag}_b[f]' if bias is not None else ''};")
        fn.close()

    # -- the bit-serial two-stage kernel ---------------------------------------
    def _emit_bitserial(self, fn: _Fn, tag: str, bound, src: str, dst: str):
        """One integer bit-serial layer: stage-1 partials, tap reduction,
        epilogue — per sample, following the hoisted-padding formulation
        (integer accumulation makes the order change bit-exact)."""
        plan = getattr(bound.plan, "conv_plan", bound.plan)
        op = bound.op
        in_shape = tuple(int(d) for d in op.in_shape)
        out_shape = tuple(int(d) for d in op.out_shape)
        if len(in_shape) == 1:  # bit-serial linear: a 1×1 conv on a 1×1 image
            c, h, w = in_shape[0], 1, 1
            f_out, oh, ow = out_shape[0], 1, 1
        else:
            c, h, w = in_shape
            f_out, oh, ow = out_shape
        kh, kw = plan.kernel
        stride, padding = plan.stride, plan.padding
        gsize = plan.group_size
        groups = plan.in_channels // gsize
        bits = active_bit_positions(plan.act_bitwidth, self.active_bits)
        tables = np.ascontiguousarray(plan.tables)
        wid = int(tables.shape[-1])
        ts = int(tables.shape[-2])  # 2^group_size rows per (bit[, group])
        pt = _ctype(plan.partial_dtype)
        at = _ctype(plan.acc_dtype)
        pt_size = np.dtype(plan.partial_dtype).itemsize
        at_size = np.dtype(plan.acc_dtype).itemsize

        # Pointwise downsample reads every stride-th pixel; fold the
        # decimation into the stage-1 grid (integer math — order-free).
        istep, s2 = 1, stride
        gh, gw = h, w
        if kh == kw == 1 and stride > 1 and padding == 0:
            istep, s2 = stride, 1
            gh, gw = oh, ow

        tab_off = self.consts.add(tables)
        cols_off = self.consts.add(np.ascontiguousarray(plan.group_cols, dtype=np.int32))
        pv_off = self.scratch.alloc(groups * gh * gw * wid * pt_size)
        acc_off = self.scratch.alloc(oh * ow * f_out * at_size)
        tt = _ctype(tables.dtype)
        fn.line(f"const {tt}* {tag}_tab = (const {tt}*)(consts + {tab_off});")
        fn.line(f"const int32_t* {tag}_cols = (const int32_t*)(consts + {cols_off});")
        fn.line(f"{pt}* {tag}_pv = ({pt}*)(scratch + {pv_off});")
        fn.line(f"{at}* {tag}_acc = ({at}*)(scratch + {acc_off});")

        # Stage 1: per-pixel, per-group bit-serial pool partials.
        fn.open(f"for (int g = 0; g < {groups}; ++g) {{")
        fn.open(f"for (int y = 0; y < {gh}; ++y) {{")
        fn.open(f"for (int x = 0; x < {gw}; ++x) {{")
        for m in range(len(bits)):
            fn.line(f"unsigned int a{m} = 0;")
        fn.open(f"for (int ci = 0; ci < {gsize}; ++ci) {{")
        fn.line(f"unsigned int v = (unsigned int){src}[((size_t)(g * {gsize} + ci) "
                f"* {h} + y * {istep}) * {w} + x * {istep}];")
        for m, j in enumerate(bits):
            fn.line(f"a{m} |= ((v >> {j}) & 1u) << ci;")
        fn.close()
        fn.line(f"{pt}* pr = {tag}_pv + (((size_t)g * {gh} + y) * {gw} + x) * {wid};")
        fn.open(f"for (int s = 0; s < {wid}; ++s) {{")
        fn.line("long long t = 0;")
        for m, j in enumerate(bits):
            if plan.mode == "direct":
                row = f"((size_t){j} * {groups} + g) * {ts} + a{m}"
            else:
                row = f"(size_t){j} * {ts} + a{m}"
            fn.line(f"t += (long long){tag}_tab[({row}) * {wid} + s];")
        fn.line(f"pr[s] = ({pt})t;")
        fn.close()
        fn.close()
        fn.close()
        fn.close()

        # Stage 2: windowed tap reduction over the in-bounds tap windows.
        kkf = kh * kw * f_out
        bounds = []
        for k in range(kh * kw):
            ki, kj = divmod(k, kw)
            y0, y1, x0, x1 = plan._tap_bounds(ki, kj, gh, gw, oh, ow, s2)
            bounds.append((y0, y1, x0, x1, ki, kj))
        rows = ", ".join(
            "{" + ", ".join(str(v) for v in b) + "}" for b in bounds
        )
        fn.line(f"static const int {tag}_tb[{kh * kw}][6] = {{{rows}}};")
        fn.line(f"memset({tag}_acc, 0, {oh * ow * f_out} * sizeof({at}));")
        fn.open(f"for (int g = 0; g < {groups}; ++g) {{")
        fn.line(f"const int32_t* cg = {tag}_cols + (size_t)g * {kkf};")
        fn.open(f"for (int k = 0; k < {kh * kw}; ++k) {{")
        fn.line(f"int y0 = {tag}_tb[k][0], y1 = {tag}_tb[k][1];")
        fn.line(f"int x0 = {tag}_tb[k][2], x1 = {tag}_tb[k][3];")
        fn.line(f"int ki = {tag}_tb[k][4], kj = {tag}_tb[k][5];")
        fn.line(f"const int32_t* ck = cg + (size_t)k * {f_out};")
        fn.open("for (int y = y0; y < y1; ++y) {")
        fn.line(f"const {pt}* prow = {tag}_pv + (((size_t)g * {gh} + "
                f"(y * {s2} + ki - {padding})) * {gw} + "
                f"(x0 * {s2} + kj - {padding})) * {wid};")
        fn.line(f"{at}* arow = {tag}_acc + ((size_t)y * {ow} + x0) * {f_out};")
        fn.open("for (int x = x0; x < x1; ++x) {")
        fn.open(f"for (int f = 0; f < {f_out}; ++f) {{")
        fn.line(f"arow[f] += ({at})prow[ck[f]];")
        fn.close()
        fn.line(f"arow += {f_out};")
        fn.line(f"prow += {s2 * wid};")
        fn.close()
        fn.close()
        fn.close()
        fn.close()
        if padding:
            border = plan._border_tensor(gh, gw, oh, ow, s2, bits)
            b_off = self.consts.add(np.ascontiguousarray(border, dtype=plan.acc_dtype))
            fn.line(f"const {at}* {tag}_bd = (const {at}*)(consts + {b_off});")
            fn.open(f"for (long e = 0; e < {oh * ow * f_out}; ++e) {{")
            fn.line(f"{tag}_acc[e] += {tag}_bd[e];")
            fn.close()

        # Epilogue: α·acc + β (→ rint → clip → cast when requantizing) —
        # the exact ufunc sequence of ConvKernelPlan._apply_epilogue.
        alpha = plan.alpha
        if np.ndim(alpha):
            a_off = self.consts.add(np.asarray(alpha, dtype=np.float64).reshape(-1))
            fn.line(f"const double* {tag}_al = (const double*)(consts + {a_off});")
            alpha_expr = f"{tag}_al[f]"
        else:
            alpha_expr = _hexf(alpha)
        if plan.beta is not None:
            be_off = self.consts.add(np.asarray(plan.beta, dtype=np.float64).reshape(-1))
            fn.line(f"const double* {tag}_be = (const double*)(consts + {be_off});")
        # ``bound.output`` (the fused epilogue's buffer), not ``op.output``
        # (the pre-epilogue intermediate, which the bound schedule eliminates).
        out_ct = _ctype(self.plan.specs[bound.output].dtype)
        fn.open(f"for (int f = 0; f < {f_out}; ++f) {{")
        fn.open(f"for (int y = 0; y < {oh}; ++y) {{")
        fn.open(f"for (int x = 0; x < {ow}; ++x) {{")
        fn.line(f"double v = (double){tag}_acc[((size_t)y * {ow} + x) * {f_out} + f] "
                f"* {alpha_expr};")
        if plan.beta is not None:
            # Skipped entirely when β is None: adding 0.0 would flip -0.0.
            fn.line(f"v = v + {tag}_be[f];")
        if plan.requant is not None:
            lo, hi, _ = plan.requant
            fn.line("v = rint(v);")
            fn.line(f"if (v < {_hexf(lo)}) v = {_hexf(lo)};")
            fn.line(f"if (v > {_hexf(hi)}) v = {_hexf(hi)};")
        fn.line(f"{dst}[((size_t)f * {oh} + y) * {ow} + x] = ({out_ct})v;")
        fn.close()
        fn.close()
        fn.close()


def emit_native(
    program,
    steps: Sequence,
    exec_plan: ExecutionPlan,
    active_bits: Optional[int] = None,
    standalone: bool = False,
) -> EmittedProgram:
    """Emit C99 for the native-eligible portion of a planned schedule."""
    return Emitter(
        program, steps, exec_plan, active_bits=active_bits, standalone=standalone
    ).emit()
