"""ctypes runtime for emitted native segments.

Loads the cached shared library and executes :class:`SegmentSpec` entries
against the executor's :class:`~repro.core.memory_plan.ShardRuntime`: the
segment function receives the consts blob, the shard's arena, a per-shard
scratch region, an ``ext`` pointer table (program input / heap buffers) and
the ragged sample count ``n``.  ctypes releases the GIL for the duration of
the call, so sharded execution parallelises exactly like the plan backend.
"""

from __future__ import annotations

import ctypes
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.codegen.build import CFLAGS, NATIVE_ABI
from repro.core.codegen.emitter import EmittedProgram, SegmentSpec
from repro.core.kernel_plan import scratch_buf
from repro.core.memory_plan import PlanStep


class NativeModule:
    """A loaded native library with typed segment entry points."""

    def __init__(self, lib_path: Path, segment_names: Sequence[str]):
        self.path = Path(lib_path)
        self._cdll = ctypes.CDLL(str(lib_path))
        self.fns: Dict[str, ctypes._CFuncPtr] = {}
        for name in segment_names:
            fn = getattr(self._cdll, name)
            fn.argtypes = [
                ctypes.c_void_p,  # consts
                ctypes.c_void_p,  # arena
                ctypes.c_void_p,  # scratch
                ctypes.POINTER(ctypes.c_void_p),  # ext
                ctypes.c_long,  # n
            ]
            fn.restype = None
            self.fns[name] = fn


class NativeExecution:
    """One executor's bound native code: module + merged execution schedule.

    ``schedule`` interleaves plain :class:`PlanStep` entries (still run by
    the NumPy plan path) with :class:`SegmentSpec` entries (dispatched to the
    library); the executor walks it in place of ``exec_plan.steps``.
    """

    def __init__(
        self,
        emitted: EmittedProgram,
        exec_plan,
        lib_path: Path,
        compiler: Optional[str],
        cache_hit: bool,
    ):
        self.emitted = emitted
        self.module = NativeModule(lib_path, [s.name for s in emitted.segments])
        self.compiler = compiler
        self.cache_hit = cache_hit
        # Copy the blob into a NumPy-owned (malloc-aligned) buffer; offsets
        # inside are 64-byte aligned relative to this base.
        self.consts = np.frombuffer(bytearray(emitted.consts or b"\x00"), dtype=np.uint8)
        self.scratch_bytes = max(int(emitted.scratch_bytes), 1)
        self.schedule: List[Union[PlanStep, SegmentSpec]] = []
        index = 0
        for seg in emitted.segments:
            while index < seg.start:
                self.schedule.append(exec_plan.steps[index])
                index += 1
            self.schedule.append(seg)
            index = seg.stop
        while index < len(exec_plan.steps):
            self.schedule.append(exec_plan.steps[index])
            index += 1

    def run_segment(self, seg: SegmentSpec, buffers: dict, runtime, n: int) -> None:
        """Execute one native segment for an ``n``-sample tile."""
        scratch = scratch_buf(
            runtime.plan_scratch(None),
            "__native_scratch__",
            (self.scratch_bytes,),
            np.uint8,
        )
        ext = (ctypes.c_void_p * max(len(seg.ext), 1))()
        for j, buf in enumerate(seg.ext):
            array = buffers[buf]
            if not array.flags.c_contiguous:
                array = np.ascontiguousarray(array)
                buffers[buf] = array
            ext[j] = array.ctypes.data
        self.module.fns[seg.name](
            self.consts.ctypes.data,
            runtime.arena.ctypes.data,
            scratch.ctypes.data,
            ext,
            n,
        )
        for buf in seg.outputs:
            buffers[buf] = runtime.view(buf, n)

    def counters(self) -> Dict[str, int]:
        counters = dict(self.emitted.counters)
        counters["cache_hit"] = int(self.cache_hit)
        return counters

    def build_meta(self) -> dict:
        """JSON-able build metadata persisted into program artifacts."""
        return {
            "abi": NATIVE_ABI,
            "source_sha256": self.emitted.source_sha256,
            "consts_sha256": self.emitted.consts_sha256,
            "cflags": list(CFLAGS),
            "compiler": self.compiler,
            "cache_hit": bool(self.cache_hit),
            "segments": len(self.emitted.segments),
            "native_steps": int(self.emitted.counters.get("native_steps", 0)),
            "scratch_bytes": int(self.emitted.scratch_bytes),
        }
