"""Native (O4) codegen backend: planned schedule → C99 → shared library.

Three stages, one per module:

* :mod:`~repro.core.codegen.emitter` — deterministic C99 emission of the
  native-eligible portion of a planned schedule (arena offsets baked as
  constants, fused chains as single loop nests, per-layer tables in one
  binary consts blob).
* :mod:`~repro.core.codegen.build` — host-compiler discovery and a content-
  hash-keyed build cache of compiled shared libraries.
* :mod:`~repro.core.codegen.runtime` — ctypes loading and execution of the
  emitted segments against the executor's shard runtimes.

:func:`bind_native` is the executor-facing entry point tying them together.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.codegen.build import (
    CFLAGS,
    NATIVE_ABI,
    NativeBuildError,
    NoCompilerError,
    build_shared_library,
    content_key,
    default_cache_dir,
    find_compiler,
)
from repro.core.codegen.emitter import (
    CodegenUnsupported,
    EmittedProgram,
    Emitter,
    SegmentSpec,
    emit_native,
)
from repro.core.codegen.runtime import NativeExecution, NativeModule

__all__ = [
    "CFLAGS",
    "NATIVE_ABI",
    "CodegenUnsupported",
    "EmittedProgram",
    "Emitter",
    "NativeBuildError",
    "NativeExecution",
    "NativeModule",
    "NoCompilerError",
    "SegmentSpec",
    "bind_native",
    "build_shared_library",
    "content_key",
    "default_cache_dir",
    "emit_native",
    "find_compiler",
]


def bind_native(
    program,
    steps: Sequence,
    exec_plan,
    active_bits: Optional[int] = None,
    cache_dir=None,
) -> NativeExecution:
    """Emit, build (or fetch from cache) and load native code for a plan.

    Raises :class:`CodegenUnsupported` when no step of the schedule is
    native-eligible, :class:`NoCompilerError` when the host has no C
    compiler (and the library is not already cached), and
    :class:`NativeBuildError` on compiler failure.
    """
    emitted = emit_native(program, steps, exec_plan, active_bits=active_bits)
    if not emitted.segments:
        raise CodegenUnsupported(
            "no native-eligible steps in this schedule (nothing to compile)"
        )
    lib_path, cache_hit, compiler = build_shared_library(
        emitted.source, emitted.consts, cache_dir=cache_dir
    )
    return NativeExecution(
        emitted, exec_plan, lib_path, compiler=compiler, cache_hit=cache_hit
    )
