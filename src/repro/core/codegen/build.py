"""Native build driver: C source + consts blob → cached shared library.

The emitter (:mod:`repro.core.codegen.emitter`) produces two artifacts per
program: deterministic C99 source and a binary constants blob (tables,
border tensors, epilogue coefficients).  This module owns everything after
that: finding a host C compiler, compiling the source into a shared library
with a pinned flag set, and caching the result on disk keyed by the SHA-256
of *both* artifacts — the same program content always maps to the same
library file, so repeated binds (and server restarts) skip the compile
entirely.

Flags are part of the contract, not a tuning knob: ``-ffp-contract=off``
forbids FMA contraction so the emitted float expressions evaluate exactly
the ufunc-by-ufunc sequence the NumPy plan backend runs — the bit-exactness
guarantee of the ``native`` backend depends on it.

Hosts without a compiler raise :class:`NoCompilerError`; the executor
catches it and falls back to the plan backend (O4 → effective O3) with a
surfaced ``fallback_reason``.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

#: ABI revision of the emitted segment entry points; bumped when the
#: signature ``(consts, arena, scratch, ext, n)`` or the layout contract
#: changes.  Persisted in artifact headers so a loader can refuse a source
#: it does not understand.
NATIVE_ABI = 1

#: Pinned compile flags (see module docstring for why they are contractual).
CFLAGS: Tuple[str, ...] = ("-O2", "-std=c99", "-fPIC", "-shared", "-ffp-contract=off")

#: Compiler candidates probed in order.
_COMPILERS = ("cc", "gcc", "clang")


class NoCompilerError(RuntimeError):
    """No C compiler found on this host; the native backend cannot build."""


class NativeBuildError(RuntimeError):
    """The C compiler rejected the emitted source (a codegen bug)."""


def find_compiler() -> Optional[str]:
    """Path of the first available host C compiler, or ``None``."""
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def default_cache_dir() -> Path:
    """Build-cache directory: ``$REPRO_NATIVE_CACHE`` or the XDG cache."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro" / "native"


def content_key(source: str, consts: bytes) -> str:
    """SHA-256 over the emitted source *and* the constants blob.

    Two programs that emit identical C but different constants (same
    architecture, different weights) must not share a library name for
    cache-correctness of the on-disk ``.c`` companion — the constants are
    passed at run time, but keying on both keeps one key usable as "the
    program content hash" everywhere (artifacts, stats, cache files).
    """
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(consts)
    return digest.hexdigest()


def build_shared_library(
    source: str, consts: bytes, cache_dir: Optional[os.PathLike] = None
) -> Tuple[Path, bool, Optional[str]]:
    """Compile (or fetch from cache) the shared library for ``source``.

    Returns ``(library_path, cache_hit, compiler)``; ``compiler`` is ``None``
    on a cache hit (nothing was invoked).  Raises :class:`NoCompilerError`
    when no compiler exists and the library is not already cached, and
    :class:`NativeBuildError` when compilation fails.
    """
    key = content_key(source, consts)
    cache = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    lib_path = cache / f"repro_{key[:32]}.so"
    if lib_path.exists():
        return lib_path, True, None
    compiler = find_compiler()
    if compiler is None:
        raise NoCompilerError(
            "no C compiler found (tried: " + ", ".join(_COMPILERS) + "); "
            "install gcc or set PATH to enable the native (O4) backend"
        )
    cache.mkdir(parents=True, exist_ok=True)
    src_path = cache / f"repro_{key[:32]}.c"
    src_path.write_text(source)
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=str(cache))
    os.close(fd)
    cmd = [compiler, *CFLAGS, "-o", tmp_name, str(src_path)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise NativeBuildError(
                f"native build failed ({' '.join(cmd)}):\n{proc.stderr.strip()[-2000:]}"
            )
        # Atomic publish: concurrent builders race benignly to the same name.
        os.replace(tmp_name, lib_path)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    return lib_path, False, compiler
