"""Deployment artifact export.

The paper's flow (Figure 1) ends with the host sending three things to the
microcontroller's flash: the dot-product lookup table, the per-layer weight
index streams, and the precision information.  This module builds that
deployable artifact from a compressed model:

* :class:`DeploymentPackage` — an in-memory description of everything the MCU
  stores (LUT bytes, packed index streams, uncompressed-layer weights, per-
  layer metadata, activation quantization parameters);
* :func:`build_deployment_package` — assemble the package from a compressed
  model (optionally with a calibrated
  :class:`~repro.core.engine.BitSerialInferenceEngine` for the activation
  parameters);
* ``save`` / ``load`` — persist the package as a ``.npz`` archive;
* :func:`emit_c_header` — render the package as a C header (const arrays),
  which is how the artifact would actually be baked into MCU firmware.

Since the whole-network compiler landed, the *compiled program* is itself a
deployment artifact:

* :func:`save_program` / :func:`load_program` — serialize a bound
  :class:`~repro.core.program.NetworkProgram` (op stream, LUT, quantization
  parameters, folded epilogues, float weights of uncompressed layers) to one
  ``.npz`` archive and reconstruct it exactly — a loaded program executes
  bit-identically to the original through the graph
  :class:`~repro.core.program.Executor`, with no model object required;
* :func:`read_program_metadata` — the artifact's JSON header only (op
  counts, shapes, LUT geometry, the pipeline's optimization level and
  per-pass reports (``pipeline``/``opt_level``), and — when an
  ahead-of-time :class:`~repro.core.program.Executor` was built before
  saving — the planner's ``execution_plan`` counters: arena bytes, steps
  fused, shard count, autotune decisions) without touching the arrays, so
  model repositories can list artifacts cheaply.  Execution plans themselves are *derived* state:
  :func:`load_program` reconstructs the IR and the next executor re-plans
  it, bitwise-identically to the original (covered by the planner's
  round-trip tests);
* :func:`package_from_program` — build the MCU flash
  :class:`DeploymentPackage` straight from the IR, so the host-side executor
  artifact and the firmware image share one source of truth.

Program artifacts are versioned: :data:`PROGRAM_SCHEMA_VERSION` is written
into every archive and checked on load, so a non-program file or an
artifact written by an unsupported schema version raises
:class:`ProgramFormatError` (naming the offending path and both versions)
instead of failing deep inside deserialization.  The supported set is
:data:`SUPPORTED_PROGRAM_SCHEMAS` — v1 (the pre-versioning format) still
loads because v2 is purely additive.

Every archive header also embeds a ``sha256`` content digest
(:func:`repro.core.storage.content_digest` over all array members) written
at save time and re-verified on every :func:`load_program` — a corrupted
artifact raises :class:`ProgramFormatError` naming the path instead of
silently mispredicting.  Repository replication diffs artifacts by this
digest (header-only via :func:`read_program_metadata`) and
:func:`verify_program_digest` checks a file in place without constructing
the program.

The package size reported here is what the MCU cost model's flash-fit check
uses conceptually (indices + LUT + uncompressed layers), so the two agree.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.engine import BitSerialInferenceEngine
from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.lut import LookupTable, build_lut
from repro.core.program import NetworkProgram, ProgramOp
from repro.core.storage import content_digest
from repro.core.tracing import trace_model
from repro.core.weight_pool import WeightPool
from repro.nn import Module
from repro.quantization.quantizer import QuantParams
from repro.quantization.weights import quantize_weight_tensor
from repro.utils.bits import pack_sub_byte, required_bits, unpack_sub_byte


@dataclass
class LayerArtifact:
    """What the MCU stores for one layer."""

    name: str
    kind: str  # "conv" or "linear"
    compressed: bool
    shape: Tuple[int, ...]
    stride: int = 1
    padding: int = 0
    # Compressed layers: packed pool indices (+ their unpacked count / bitwidth).
    packed_indices: Optional[np.ndarray] = None
    num_indices: int = 0
    index_bitwidth: int = 8
    index_shape: Tuple[int, ...] = ()
    # Uncompressed layers: 8-bit quantized weights and their scale.
    q_weight: Optional[np.ndarray] = None
    weight_scale: float = 1.0
    bias: Optional[np.ndarray] = None
    activation_scale: Optional[float] = None
    activation_zero_point: Optional[int] = None

    @property
    def storage_bytes(self) -> float:
        """Flash bytes this layer contributes to the deployment image."""
        total = 0.0
        if self.packed_indices is not None:
            total += self.packed_indices.size
        if self.q_weight is not None:
            total += self.q_weight.size
        if self.bias is not None:
            total += self.bias.size  # 8-bit biases
        return total

    def unpack_indices(self) -> np.ndarray:
        """Recover the index tensor from the packed byte stream."""
        if self.packed_indices is None:
            raise ValueError(f"layer '{self.name}' has no packed indices")
        flat = unpack_sub_byte(self.packed_indices, self.index_bitwidth, self.num_indices)
        return flat.reshape(self.index_shape)


@dataclass
class DeploymentPackage:
    """Everything the microcontroller needs to run the compressed network."""

    network: str
    group_size: int
    pool_size: int
    lut_bitwidth: int
    activation_bitwidth: int
    lut_integer: np.ndarray  # (2^g, S) integer entries
    lut_scale: float
    layers: List[LayerArtifact] = field(default_factory=list)

    # -- sizes ----------------------------------------------------------------
    @property
    def lut_bytes(self) -> float:
        return self.lut_integer.size * self.lut_bitwidth / 8.0

    @property
    def flash_bytes(self) -> float:
        """Total flash image size: LUT + every layer's storage."""
        return self.lut_bytes + sum(layer.storage_bytes for layer in self.layers)

    @property
    def compressed_layers(self) -> List[LayerArtifact]:
        return [layer for layer in self.layers if layer.compressed]

    # -- persistence ------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist the package as a ``.npz`` archive."""
        path = Path(path)
        arrays: Dict[str, np.ndarray] = {
            "__meta__": np.array(
                [self.group_size, self.pool_size, self.lut_bitwidth, self.activation_bitwidth]
            ),
            "__network__": np.array(self.network),
            "__lut__": self.lut_integer,
            "__lut_scale__": np.array(self.lut_scale),
            "__layer_names__": np.array([layer.name for layer in self.layers]),
        }
        for i, layer in enumerate(self.layers):
            prefix = f"layer{i}"
            arrays[f"{prefix}_info"] = np.array(
                [
                    1 if layer.compressed else 0,
                    layer.num_indices,
                    layer.index_bitwidth,
                    layer.stride,
                    layer.padding,
                ]
            )
            arrays[f"{prefix}_kind"] = np.array(layer.kind)
            arrays[f"{prefix}_shape"] = np.array(layer.shape)
            arrays[f"{prefix}_index_shape"] = np.array(layer.index_shape or (0,))
            if layer.packed_indices is not None:
                arrays[f"{prefix}_indices"] = layer.packed_indices
            if layer.q_weight is not None:
                arrays[f"{prefix}_qweight"] = layer.q_weight
                arrays[f"{prefix}_wscale"] = np.array(layer.weight_scale)
            if layer.bias is not None:
                arrays[f"{prefix}_bias"] = layer.bias
            if layer.activation_scale is not None:
                arrays[f"{prefix}_act"] = np.array(
                    [layer.activation_scale, float(layer.activation_zero_point)]
                )
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DeploymentPackage":
        data = np.load(Path(path), allow_pickle=False)
        group_size, pool_size, lut_bitwidth, act_bitwidth = (int(v) for v in data["__meta__"])
        layer_names = [str(name) for name in data["__layer_names__"]]
        package = cls(
            network=str(data["__network__"]),
            group_size=group_size,
            pool_size=pool_size,
            lut_bitwidth=lut_bitwidth,
            activation_bitwidth=act_bitwidth,
            lut_integer=data["__lut__"],
            lut_scale=float(data["__lut_scale__"]),
        )
        for i, name in enumerate(layer_names):
            prefix = f"layer{i}"
            compressed, num_indices, index_bitwidth, stride, padding = (
                int(v) for v in data[f"{prefix}_info"]
            )
            index_shape = tuple(int(v) for v in data[f"{prefix}_index_shape"])
            layer = LayerArtifact(
                name=name,
                kind=str(data[f"{prefix}_kind"]),
                compressed=bool(compressed),
                shape=tuple(int(v) for v in data[f"{prefix}_shape"]),
                stride=stride,
                padding=padding,
                num_indices=num_indices,
                index_bitwidth=index_bitwidth,
                index_shape=index_shape if index_shape != (0,) else (),
            )
            if f"{prefix}_indices" in data:
                layer.packed_indices = data[f"{prefix}_indices"]
            if f"{prefix}_qweight" in data:
                layer.q_weight = data[f"{prefix}_qweight"]
                layer.weight_scale = float(data[f"{prefix}_wscale"])
            if f"{prefix}_bias" in data:
                layer.bias = data[f"{prefix}_bias"]
            if f"{prefix}_act" in data:
                act = data[f"{prefix}_act"]
                layer.activation_scale = float(act[0])
                layer.activation_zero_point = int(act[1])
            package.layers.append(layer)
        return package


def build_deployment_package(
    model: Module,
    input_shape: Tuple[int, int, int],
    pool: WeightPool,
    network_name: str = "network",
    lut_bitwidth: int = 8,
    activation_bitwidth: int = 8,
    index_bitwidth: Optional[int] = None,
    engine: Optional[BitSerialInferenceEngine] = None,
) -> DeploymentPackage:
    """Assemble the flashable artifact for a compressed model.

    ``index_bitwidth`` defaults to ``log2(pool size)`` rounded up (the paper's
    Eq. 4 minimum); pass 8 to mirror the byte-aligned implementation choice.
    When a calibrated ``engine`` is given, each compressed layer's activation
    quantization parameters are embedded (the "precision information" of
    Figure 1).
    """
    index_bits = index_bitwidth if index_bitwidth is not None else required_bits(pool.size)
    if not 1 <= index_bits <= 8:
        raise ValueError(f"index_bitwidth must be in [1, 8] for sub-byte packing, got {index_bits}")
    lut: LookupTable = build_lut(pool).quantize(lut_bitwidth)

    package = DeploymentPackage(
        network=network_name,
        group_size=pool.group_size,
        pool_size=pool.size,
        lut_bitwidth=lut_bitwidth,
        activation_bitwidth=activation_bitwidth,
        lut_integer=lut.integer_values,
        lut_scale=float(lut.scale),
    )

    traces = trace_model(model, input_shape)
    for trace in traces:
        module = trace.module
        artifact = LayerArtifact(
            name=trace.name,
            kind=trace.kind,
            compressed=isinstance(module, (WeightPoolConv2d, WeightPoolLinear)),
            shape=trace.weight_shape,
            stride=trace.stride,
            padding=trace.padding,
        )
        if artifact.compressed:
            indices = module.indices
            artifact.index_bitwidth = index_bits
            artifact.num_indices = int(indices.size)
            artifact.index_shape = tuple(indices.shape)
            artifact.packed_indices = pack_sub_byte(indices.ravel(), index_bits)
            if module.bias is not None:
                q_bias, _ = quantize_weight_tensor(module.bias.data, bitwidth=8)
                artifact.bias = q_bias.astype(np.int8)
            if engine is not None and id(module) in engine.activation_params:
                params = engine.activation_params[id(module)]
                artifact.activation_scale = params.scale
                artifact.activation_zero_point = params.zero_point
        else:
            q_weight, params = quantize_weight_tensor(module.weight.data, bitwidth=8)
            artifact.q_weight = q_weight.astype(np.int8)
            artifact.weight_scale = params.scale
            if module.bias is not None:
                q_bias, _ = quantize_weight_tensor(module.bias.data, bitwidth=8)
                artifact.bias = q_bias.astype(np.int8)
        package.layers.append(artifact)
    return package


# ---------------------------------------------------------------------------
# Compiled-program serialization (the executor-side deployment artifact)
# ---------------------------------------------------------------------------
#: Schema version written into every program artifact.  Version 1 is the
#: original (implicitly unversioned) format of the first compiled-program
#: release; version 2 adds the explicit ``schema`` field and the embedded
#: metadata summary; version 3 adds the ``stream`` capability block to the
#: metadata summary (per-op dirty-region propagation rules), which serving
#: uses to gate streaming requests.  Bump this whenever the archive layout
#: changes incompatibly.
PROGRAM_SCHEMA_VERSION = 3

#: Schema versions :func:`load_program` can read.  v2 and v3 are purely
#: additive over v1, so older artifacts still load (a v1/v2 artifact simply
#: has no ``stream`` capability block and cannot serve streaming requests);
#: unknown versions raise :class:`ProgramFormatError`.
SUPPORTED_PROGRAM_SCHEMAS = (1, 2, PROGRAM_SCHEMA_VERSION)


class ProgramFormatError(ValueError):
    """A program artifact is unreadable: wrong schema version or not a
    program archive at all.  The message always names the offending path."""


def _program_header(path: Path, data) -> Dict:
    """Parse and schema-check the ``__program__`` JSON header of an archive."""
    if "__program__" not in data:
        raise ProgramFormatError(
            f"'{path}' is not a compiled-program artifact "
            "(missing the '__program__' header; was it written by "
            "save_program()?)"
        )
    meta = json.loads(str(data["__program__"]))
    schema = meta.get("schema", 1)
    if schema not in SUPPORTED_PROGRAM_SCHEMAS:
        supported = ", ".join(str(v) for v in SUPPORTED_PROGRAM_SCHEMAS)
        raise ProgramFormatError(
            f"'{path}' was written with program schema version {schema}, but "
            f"this build reads version(s) {supported}; re-export the program "
            "with the matching repro version"
        )
    return meta


def _encode_attrs(attrs: Dict, prefix: str, arrays: Dict[str, np.ndarray]) -> Dict:
    """Split op attrs into a JSON-able description + named npz arrays."""
    meta: Dict[str, Dict] = {}
    for key, value in attrs.items():
        if value is None:
            meta[key] = {"t": "none"}
        elif isinstance(value, QuantParams):
            meta[key] = {
                "t": "qp",
                "scale": float(value.scale),
                "zero_point": int(value.zero_point),
                "bitwidth": int(value.bitwidth),
                "signed": bool(value.signed),
            }
        elif isinstance(value, np.ndarray):
            meta[key] = {"t": "arr"}
            arrays[f"{prefix}_{key}"] = value
        elif (
            isinstance(value, tuple)
            and len(value) == 2
            and all(isinstance(v, np.ndarray) for v in value)
        ):
            meta[key] = {"t": "arrpair"}
            arrays[f"{prefix}_{key}_0"] = value[0]
            arrays[f"{prefix}_{key}_1"] = value[1]
        elif isinstance(value, (bool, str)):
            meta[key] = {"t": "val", "v": value}
        elif isinstance(value, (int, np.integer)):
            meta[key] = {"t": "val", "v": int(value)}
        elif isinstance(value, (float, np.floating)):
            meta[key] = {"t": "val", "v": float(value)}
        else:
            raise TypeError(
                f"cannot serialize program attr '{key}' of type {type(value).__name__}"
            )
    return meta


def _decode_attrs(meta: Dict, prefix: str, data) -> Dict:
    attrs: Dict = {}
    for key, desc in meta.items():
        kind = desc["t"]
        if kind == "none":
            attrs[key] = None
        elif kind == "qp":
            attrs[key] = QuantParams(
                scale=desc["scale"],
                zero_point=desc["zero_point"],
                bitwidth=desc["bitwidth"],
                signed=desc["signed"],
            )
        elif kind == "arr":
            attrs[key] = data[f"{prefix}_{key}"]
        elif kind == "arrpair":
            attrs[key] = (data[f"{prefix}_{key}_0"], data[f"{prefix}_{key}_1"])
        else:
            attrs[key] = desc["v"]
    return attrs


def save_program(program: NetworkProgram, path: Union[str, Path]) -> None:
    """Serialize a bound :class:`NetworkProgram` as a ``.npz`` archive.

    The archive is self-contained: the op stream (with folded epilogues and
    quantization parameters), the LUT, and the float weights of uncompressed
    layers.  :func:`load_program` reconstructs a program whose executor output
    is bit-identical to the original's.  The archive carries
    :data:`PROGRAM_SCHEMA_VERSION` plus the program's
    :meth:`~repro.core.program.NetworkProgram.metadata` summary, which
    :func:`read_program_metadata` (and model repositories built on it) read
    without touching the arrays.
    """
    if not program.bound:
        raise ValueError("only bound programs (with a LUT) can be serialized")
    arrays: Dict[str, np.ndarray] = {"__lut_values__": program.lut.values}
    if program.lut.integer_values is not None:
        arrays["__lut_integer__"] = program.lut.integer_values
    ops_meta = []
    for i, op in enumerate(program.ops):
        ops_meta.append(
            {
                "kind": op.kind,
                "name": op.name,
                "inputs": list(op.inputs),
                "output": int(op.output),
                "in_shape": list(op.in_shape),
                "out_shape": list(op.out_shape),
                "attrs": _encode_attrs(op.attrs, f"op{i}", arrays),
            }
        )
    meta = {
        "schema": PROGRAM_SCHEMA_VERSION,
        "metadata": program.metadata(),
        "input_shape": list(program.input_shape),
        "input_id": int(program.input_id),
        "output_id": int(program.output_id),
        "num_buffers": int(program.num_buffers),
        "act_bitwidth": int(program.act_bitwidth),
        "optimized": bool(program.optimized),
        "opt_level": program.opt_level,
        "pipeline": program.pipeline_report,
        "lut": {
            "pool_size": int(program.lut.pool_size),
            "group_size": int(program.lut.group_size),
            "bitwidth": program.lut.bitwidth,
            "scale": program.lut.scale,
            "order": program.lut.order,
        },
        "ops": ops_meta,
    }
    if program.native_build is not None:
        # Native (O4) build metadata: the JSON header keeps the hashes/flags
        # (visible to read_program_metadata without array loads); the emitted
        # C source itself ships as a byte array member, so a serving host
        # rebuilds the exact same library deterministically.
        native = dict(program.native_build)
        source = native.pop("source", None)
        meta["native"] = native
        if source is not None:
            arrays["__native_source__"] = np.frombuffer(
                source.encode("utf-8"), dtype=np.uint8
            )
    # Content digest over every array member (the header itself excluded —
    # it carries the digest).  load_program re-verifies this; replica sync
    # diffs repositories by it without loading arrays.
    meta["sha256"] = content_digest(arrays)
    arrays["__program__"] = np.array(json.dumps(meta))
    np.savez_compressed(Path(path), **arrays)


def load_program(path: Union[str, Path]) -> NetworkProgram:
    """Reconstruct a :class:`NetworkProgram` saved by :func:`save_program`.

    The loaded program carries no module references — it executes purely from
    the serialized op attributes (indices, LUT, epilogue terms, weights).
    Raises :class:`ProgramFormatError` (naming ``path``) when the file is not
    a program artifact, was written by an unsupported schema version, or its
    array contents no longer match the embedded sha256 digest.
    """
    path = Path(path)
    data = np.load(path, allow_pickle=False)
    meta = _program_header(path, data)
    _verify_header_digest(path, data, meta)
    lut_meta = meta["lut"]
    lut = LookupTable(
        values=data["__lut_values__"],
        pool_size=lut_meta["pool_size"],
        group_size=lut_meta["group_size"],
        bitwidth=lut_meta["bitwidth"],
        scale=lut_meta["scale"],
        integer_values=data["__lut_integer__"] if "__lut_integer__" in data else None,
        order=lut_meta["order"],
    )
    ops = [
        ProgramOp(
            kind=op_meta["kind"],
            inputs=tuple(op_meta["inputs"]),
            output=op_meta["output"],
            name=op_meta["name"],
            attrs=_decode_attrs(op_meta["attrs"], f"op{i}", data),
            module=None,
            in_shape=tuple(op_meta["in_shape"]),
            out_shape=tuple(op_meta["out_shape"]),
        )
        for i, op_meta in enumerate(meta["ops"])
    ]
    native_build = None
    if meta.get("native") is not None:
        native_build = dict(meta["native"])
        if "__native_source__" in data:
            native_build["source"] = bytes(data["__native_source__"]).decode("utf-8")
    return NetworkProgram(
        ops=ops,
        input_id=meta["input_id"],
        output_id=meta["output_id"],
        num_buffers=meta["num_buffers"],
        input_shape=tuple(meta["input_shape"]),
        lut=lut,
        act_bitwidth=meta["act_bitwidth"],
        optimized=meta["optimized"],
        opt_level=meta.get("opt_level"),
        pipeline_report=meta.get("pipeline"),
        native_build=native_build,
    )


def _verify_header_digest(path: Path, data, meta: Dict) -> None:
    """Re-hash every array member and compare to the header's ``sha256``.

    Artifacts written before the digest landed (no ``sha256`` key) pass —
    the field is additive within schema v2 — but a *present* digest must
    match bit-for-bit.
    """
    expected = meta.get("sha256")
    if expected is None:
        return
    actual = content_digest(
        {name: data[name] for name in data.files if name != "__program__"}
    )
    if actual != expected:
        raise ProgramFormatError(
            f"'{path}' failed content verification: artifact sha256 is "
            f"{actual}, header says {expected} — the file was corrupted or "
            "truncated after export; re-sync or re-export it"
        )


def verify_program_digest(path: Union[str, Path]) -> Optional[str]:
    """Verify an artifact's embedded sha256 in place; return the digest.

    Reads the header, re-hashes the array members, and raises
    :class:`ProgramFormatError` (naming ``path``) on any mismatch — without
    constructing the program.  Returns the verified digest, or ``None`` for
    pre-digest artifacts that carry no ``sha256`` field.  Replica nodes run
    this on every synced pull before publishing the artifact.
    """
    path = Path(path)
    data = np.load(path, allow_pickle=False)
    meta = _program_header(path, data)
    _verify_header_digest(path, data, meta)
    return meta.get("sha256")


def read_program_metadata(path: Union[str, Path]) -> Dict:
    """Read a program artifact's metadata summary without loading arrays.

    Returns the dict :meth:`NetworkProgram.metadata` produced at save time
    (input/output shapes, op counts, activation bitwidth, LUT geometry, …)
    plus ``schema`` and ``file_bytes``.  ``.npz`` members load lazily, so
    this only decompresses the small JSON header — cheap enough for a model
    repository to call on every artifact it lists.  Raises
    :class:`ProgramFormatError` on non-program or wrong-schema files.
    """
    path = Path(path)
    data = np.load(path, allow_pickle=False)
    meta = _program_header(path, data)
    summary = dict(meta.get("metadata") or _metadata_from_header(meta))
    summary["schema"] = meta.get("schema", 1)
    summary["file_bytes"] = path.stat().st_size
    # Content digest (None for pre-digest artifacts): replica sync diffs
    # repositories on this field without touching the arrays.
    summary["sha256"] = meta.get("sha256")
    return summary


def _metadata_from_header(meta: Dict) -> Dict:
    """Derive the metadata summary from a v1 header (no embedded summary).

    Everything needed lives in the JSON: op kinds/shapes, buffer counts, and
    the LUT geometry — still no array loads.
    """
    op_counts: Dict[str, int] = {}
    output_shape = list(meta["input_shape"])
    for op_meta in meta["ops"]:
        op_counts[op_meta["kind"]] = op_counts.get(op_meta["kind"], 0) + 1
        if op_meta["output"] == meta["output_id"]:
            output_shape = list(op_meta["out_shape"])
    lut_meta = meta["lut"]
    return {
        "input_shape": list(meta["input_shape"]),
        "output_shape": output_shape,
        "num_ops": len(meta["ops"]),
        "num_buffers": int(meta["num_buffers"]),
        "op_counts": op_counts,
        "act_bitwidth": int(meta["act_bitwidth"]),
        "optimized": bool(meta["optimized"]),
        "bound": True,  # only bound programs are ever serialized
        "lut": {
            "pool_size": int(lut_meta["pool_size"]),
            "group_size": int(lut_meta["group_size"]),
            "bitwidth": lut_meta["bitwidth"],
        },
    }


def package_from_program(
    program: NetworkProgram,
    network_name: str = "network",
    lut_bitwidth: int = 8,
    index_bitwidth: Optional[int] = None,
) -> DeploymentPackage:
    """Build the MCU flash :class:`DeploymentPackage` from a compiled program.

    The firmware image and the host executor artifact derive from the same
    IR: packed index streams and activation parameters come from the
    ``bitserial_*`` ops, q7 weights from the float ``conv``/``linear`` ops.
    """
    if not program.bound:
        raise ValueError("only bound programs can be packaged for deployment")
    lut = program.lut
    if lut.bitwidth is None:
        lut = lut.quantize(lut_bitwidth)
    pool_size = lut.pool_size
    index_bits = index_bitwidth if index_bitwidth is not None else required_bits(pool_size)
    if not 1 <= index_bits <= 8:
        raise ValueError(
            f"index_bitwidth must be in [1, 8] for sub-byte packing, got {index_bits}"
        )
    package = DeploymentPackage(
        network=network_name,
        group_size=lut.group_size,
        pool_size=pool_size,
        lut_bitwidth=lut.bitwidth,
        activation_bitwidth=program.act_bitwidth,
        lut_integer=lut.integer_values,
        lut_scale=float(lut.scale),
    )
    for op in program.ops:
        if op.kind in ("bitserial_conv", "bitserial_linear"):
            indices = np.asarray(op.attrs["indices"])
            params = op.attrs.get("params")
            artifact = LayerArtifact(
                name=op.name,
                kind="conv" if op.kind == "bitserial_conv" else "linear",
                compressed=True,
                shape=(op.out_shape[0], op.attrs["in_channels"])
                + ((op.attrs["kernel_size"],) * 2 if op.kind == "bitserial_conv" else ()),
                stride=op.attrs.get("stride", 1),
                padding=op.attrs.get("padding", 0),
                index_bitwidth=index_bits,
                num_indices=int(indices.size),
                index_shape=tuple(indices.shape),
                packed_indices=pack_sub_byte(indices.ravel(), index_bits),
                activation_scale=params.scale if params else None,
                activation_zero_point=params.zero_point if params else None,
            )
            if op.attrs.get("bias") is not None:
                q_bias, _ = quantize_weight_tensor(op.attrs["bias"], bitwidth=8)
                artifact.bias = q_bias.astype(np.int8)
            package.layers.append(artifact)
        elif op.kind in ("conv", "linear"):
            q_weight, w_params = quantize_weight_tensor(op.attrs["weight"], bitwidth=8)
            artifact = LayerArtifact(
                name=op.name,
                kind=op.kind,
                compressed=False,
                shape=tuple(op.attrs["weight"].shape),
                stride=op.attrs.get("stride", 1),
                padding=op.attrs.get("padding", 0),
                q_weight=q_weight.astype(np.int8),
                weight_scale=w_params.scale,
            )
            if op.attrs.get("bias") is not None:
                q_bias, _ = quantize_weight_tensor(op.attrs["bias"], bitwidth=8)
                artifact.bias = q_bias.astype(np.int8)
            package.layers.append(artifact)
    return package


def _c_array(name: str, values: np.ndarray, ctype: str = "int8_t", per_line: int = 16) -> str:
    flat = values.ravel()
    lines = []
    for start in range(0, flat.size, per_line):
        chunk = ", ".join(str(int(v)) for v in flat[start : start + per_line])
        lines.append(f"    {chunk},")
    body = "\n".join(lines)
    return f"static const {ctype} {name}[{flat.size}] = {{\n{body}\n}};\n"


def emit_c_header(package: DeploymentPackage, guard: str = "WEIGHT_POOL_NETWORK_H") -> str:
    """Render the deployment package as a C header for MCU firmware.

    The header contains the quantized LUT, every compressed layer's packed
    index stream, every uncompressed layer's q7 weights, and the precision
    metadata — the exact contents the paper loads into flash (Figure 1).
    """
    parts = [
        f"#ifndef {guard}",
        f"#define {guard}",
        "",
        "#include <stdint.h>",
        "",
        f"/* Auto-generated deployment package for '{package.network}'. */",
        f"#define WP_GROUP_SIZE {package.group_size}",
        f"#define WP_POOL_SIZE {package.pool_size}",
        f"#define WP_LUT_BITWIDTH {package.lut_bitwidth}",
        f"#define WP_ACTIVATION_BITWIDTH {package.activation_bitwidth}",
        f"#define WP_NUM_LAYERS {len(package.layers)}",
        "",
        f"/* LUT scale: {package.lut_scale!r} */",
        _c_array("wp_lut", package.lut_integer, "int16_t" if package.lut_bitwidth > 8 else "int8_t"),
    ]
    for i, layer in enumerate(package.layers):
        parts.append(f"/* layer {i}: {layer.name} ({layer.kind}), "
                     f"{'compressed' if layer.compressed else 'uncompressed'} */")
        if layer.packed_indices is not None:
            parts.append(_c_array(f"wp_layer{i}_indices", layer.packed_indices, "uint8_t"))
        if layer.q_weight is not None:
            parts.append(_c_array(f"wp_layer{i}_weights", layer.q_weight, "int8_t"))
        if layer.bias is not None:
            parts.append(_c_array(f"wp_layer{i}_bias", layer.bias, "int8_t"))
    parts.append(f"#endif /* {guard} */")
    return "\n".join(parts)
