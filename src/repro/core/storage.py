"""Storage accounting and compression ratios (paper Eq. 3–4 and Table 3).

The overall storage of a deployed weight-pool network consists of:

* per-layer **index storage** for every compressed layer
  (``num_groups × index_bitwidth`` bits);
* the shared **lookup table** (``2^N × S × B_l`` bits, Eq. 3);
* the weights of **uncompressed layers** (first conv, depthwise convs, FC by
  default) stored at the baseline weight bitwidth;
* biases (stored at the baseline bitwidth).

The compression ratio compares against storing *all* weights at the baseline
bitwidth (8-bit in the paper).

This module also owns the artifact integrity helpers (:func:`content_digest`,
:func:`file_sha256`): program archives embed a sha256 over their array
contents so loads detect corruption and replica sync can diff repositories
by header metadata alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.policy import CompressionPolicy
from repro.core.tracing import LayerTrace, trace_model
from repro.core.weight_pool import WeightPool
from repro.nn import Module
from repro.utils.bits import required_bits


def content_digest(arrays: Mapping[str, np.ndarray]) -> str:
    """Order-independent sha256 over named arrays (name, dtype, shape, bytes).

    This is the digest :func:`repro.core.export.save_program` embeds in the
    artifact header and :func:`~repro.core.export.load_program` re-checks:
    it covers every array member's identity and raw contents, so any
    bit-flip in the payload (or a renamed/missing member) changes the
    digest.  Arrays are visited in sorted-name order and each contribution
    is length-prefixed, so the encoding is unambiguous.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        for token in (name, str(array.dtype), repr(tuple(array.shape))):
            raw = token.encode("utf-8")
            digest.update(len(raw).to_bytes(8, "big"))
            digest.update(raw)
        payload = array.tobytes()
        digest.update(len(payload).to_bytes(8, "big"))
        digest.update(payload)
    return digest.hexdigest()


def file_sha256(path: Union[str, Path], chunk_bytes: int = 1 << 20) -> str:
    """sha256 of a file's raw bytes (streamed; used to verify synced pulls)."""
    digest = hashlib.sha256()
    with open(Path(path), "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def lut_storage_bits(group_size: int, pool_size: int, lut_bitwidth: int) -> int:
    """Eq. 3: ``Storage_LUT = 2^N × S × B_l`` in bits."""
    if group_size < 1 or pool_size < 1 or lut_bitwidth < 1:
        raise ValueError("group_size, pool_size and lut_bitwidth must all be positive")
    return (1 << group_size) * pool_size * lut_bitwidth


def theoretical_compression_ratio(
    total_params: int,
    weight_bitwidth: int = 8,
    group_size: int = 8,
    pool_size: int = 64,
    lut_bitwidth: int = 8,
    index_bitwidth: Optional[int] = None,
) -> float:
    """Eq. 4: maximum compression ratio when *every* weight is pooled."""
    if total_params <= 0:
        raise ValueError(f"total_params must be positive, got {total_params}")
    index_bits = index_bitwidth if index_bitwidth is not None else required_bits(pool_size)
    numerator = total_params * weight_bitwidth
    denominator = (total_params / group_size) * index_bits + lut_storage_bits(
        group_size, pool_size, lut_bitwidth
    )
    return numerator / denominator


@dataclass
class LayerStorage:
    """Storage accounting for a single layer."""

    name: str
    kind: str
    compressed: bool
    weight_params: int
    bias_params: int
    storage_bits: float

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8.0


@dataclass
class StorageReport:
    """Whole-network storage accounting."""

    layers: List[LayerStorage]
    lut_bits: int
    pool_size: int
    group_size: int
    index_bitwidth: int
    lut_bitwidth: int
    baseline_bitwidth: int

    # -- totals -------------------------------------------------------------
    @property
    def total_params(self) -> int:
        """Uncompressed weight parameter count (the paper's "Total param" column)."""
        return sum(layer.weight_params for layer in self.layers)

    @property
    def baseline_bits(self) -> float:
        """Storage of the uncompressed 8-bit baseline (weights + biases)."""
        return sum(
            (layer.weight_params + layer.bias_params) * self.baseline_bitwidth
            for layer in self.layers
        )

    @property
    def compressed_bits(self) -> float:
        """Total storage of the weight-pool deployment (layers + LUT)."""
        return sum(layer.storage_bits for layer in self.layers) + self.lut_bits

    @property
    def compression_ratio(self) -> float:
        """Overall compression ratio versus the 8-bit baseline (Table 3 "CR")."""
        return self.baseline_bits / self.compressed_bits

    @property
    def lut_overhead(self) -> float:
        """LUT share of total compressed storage (Table 3 "LUT overhead")."""
        return self.lut_bits / self.compressed_bits

    @property
    def compressed_bytes(self) -> float:
        return self.compressed_bits / 8.0

    def flash_bytes(self) -> float:
        """Bytes of flash needed to store the deployed network (weights + indices + LUT)."""
        return self.compressed_bytes


def analyze_model_storage(
    model: Module,
    input_shape: Tuple[int, int, int],
    pool: Optional[WeightPool] = None,
    policy: Optional[CompressionPolicy] = None,
    pool_size: int = 64,
    index_bitwidth: Optional[int] = None,
    lut_bitwidth: int = 8,
    baseline_bitwidth: int = 8,
) -> StorageReport:
    """Account for the storage of a model under weight-pool deployment.

    The model may be an *already compressed* model (containing weight-pool
    layers), in which case the actual layer types decide what is compressed;
    or an uncompressed model, in which case ``policy`` (plus ``pool_size``)
    decides eligibility hypothetically — convenient for Table 3-style studies
    without having to run the full compression pipeline.
    """
    policy = policy or CompressionPolicy()
    group_size = pool.group_size if pool is not None else policy.group_size
    actual_pool_size = pool.size if pool is not None else pool_size
    index_bits = index_bitwidth if index_bitwidth is not None else required_bits(actual_pool_size)

    traces = trace_model(model, input_shape)
    layers: List[LayerStorage] = []
    any_compressed = False
    for trace in traces:
        module = trace.module
        if isinstance(module, (WeightPoolConv2d, WeightPoolLinear)):
            compressed = True
            num_indices = module.num_index_entries()
        else:
            compressed = policy.eligible(trace)
            if compressed:
                channels = (
                    trace.in_channels if trace.kind == "linear" else trace.weight_shape[1]
                )
                padded = int(np.ceil(channels / group_size)) * group_size
                num_groups_per_filter = (padded // group_size) * (
                    trace.kernel_size**2 if trace.kind == "conv" else 1
                )
                num_indices = trace.weight_shape[0] * num_groups_per_filter
            else:
                num_indices = 0
        if compressed:
            any_compressed = True
            bits = num_indices * index_bits + trace.bias_params * baseline_bitwidth
        else:
            bits = (trace.weight_params + trace.bias_params) * baseline_bitwidth
        layers.append(
            LayerStorage(
                name=trace.name,
                kind=trace.kind,
                compressed=compressed,
                weight_params=trace.weight_params,
                bias_params=trace.bias_params,
                storage_bits=bits,
            )
        )

    lut_bits = lut_storage_bits(group_size, actual_pool_size, lut_bitwidth) if any_compressed else 0
    return StorageReport(
        layers=layers,
        lut_bits=lut_bits,
        pool_size=actual_pool_size,
        group_size=group_size,
        index_bitwidth=index_bits,
        lut_bitwidth=lut_bitwidth,
        baseline_bitwidth=baseline_bitwidth,
    )
