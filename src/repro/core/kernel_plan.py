"""Compiled per-layer kernel plans for bit-serial LUT execution.

The functional kernels in :mod:`repro.core.bitserial` re-derive every
per-layer constant (sub-tables, zero-point corrections, dtypes) on every
batch and loop in Python over every channel-group × kernel-tap, gathering
``N·T·P·M·F`` table entries per batch (``T`` taps, ``P`` output positions,
``M`` bit positions, ``F`` filters).  A *kernel plan* moves all per-layer
constant work to compile time — once per layer — and restructures execution
so the per-batch gather work drops by roughly ``M·KH·KW``:

* **Pre-gathered sub-tables** — in direct mode (``F ≤ S``, the paper's §4.3
  dispatch rule) the LUT columns each channel group actually uses,
  ``lut.values[:, used]``, are gathered at compile time into one contiguous
  ``(G, 2^g, W)`` tensor with the layer's pool indices remapped into the
  compact column space; in precompute mode (``F > S``) the shared ``(2^g,
  S)`` table is used whole.
* **Bit/space hoisting** — at run time the activation image is bit-encoded
  *once per padded pixel* and the shift-accumulate over bit positions
  produces per-group pool partials ``pv[n, g, y, x, :]`` before the
  convolution window is taken.  Overlapping windows share pixels, so this
  memoizes the bit-serial work across the ``KH·KW`` taps that would
  otherwise recompute it (the §4.3 precompute idea applied network-side).
  The remaining tap reduction is a single bit-free windowed gather.
* **Fused affine epilogue** — the activation scale, the zero-point correction
  ``scale · zero_point · Σw`` and the layer bias folded into one
  ``out = α·acc + β`` applied after accumulation.
* **Compact dtypes** — LUT addresses are ``uint8``/``uint16`` (values are
  below ``2^g``), quantized LUTs accumulate in *integers* sized by exact
  overflow bounds (``int16`` tables and partials for the default 8-bit LUT ×
  8-bit activations) with a single final rescale, and full-precision LUTs
  keep ``float64`` tables so the bit-exactness invariant against the
  reference kernel holds.  An explicit ``table_dtype`` (e.g. ``np.float32``)
  trades exactness for memory.

Batch and tap chunking bound every gather temporary to a fixed memory
budget, so the kernel stays memory-lean for arbitrarily large layers.

Plans are immutable snapshots of ``(indices, lut, quant params)``; recompile
after changing any of them (the engine invalidates its plan cache on
``set_activation_bitwidth`` / ``set_lut_bitwidth``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

import sys

from repro.core.bitserial import active_bit_positions, bit_vector_values, _validate_unsigned
from repro.core.lut import LookupTable
from repro.nn.functional import conv_output_size
from repro.utils.bits import min_uint_dtype

# Upper bound on the size of any single temporary materialised during
# execution; batches and taps are processed in chunks that fit this budget.
_GATHER_BUDGET_BYTES = 64 << 20

# 8×8 bit-matrix transpose constants (Hacker's Delight §7-3): with the 8
# bytes of one channel group viewed as a little-endian uint64 ``x``,
# ``(((x >> j) & LANES) * GATHER) >> 56`` collects bit ``j`` of every
# channel into one byte — the group's LUT address for bit position ``j``.
_BIT_LANES = np.uint64(0x0101010101010101)
_BIT_GATHER = np.uint64(0x0102040810204080)


def scratch_buf(scratch: Optional[dict], name: str, shape, dtype) -> np.ndarray:
    """A reusable work buffer from ``scratch``, or a fresh allocation.

    ``scratch`` is a caller-owned dict keyed by ``(name, shape, dtype)``; the
    graph executor hands every kernel-plan step a per-shard dict so repeated
    batches of the same geometry never re-allocate their gather temporaries
    (pool partials, tap scratch, accumulators).  ``None`` (the per-layer
    engine path) allocates exactly as before.  Buffers come back
    *uninitialised* — callers must fully overwrite or ``fill`` them.
    """
    if scratch is None:
        return np.empty(shape, dtype=dtype)
    key = (name, tuple(shape), np.dtype(dtype).str)
    buf = scratch.get(key)
    if buf is None:
        buf = scratch[key] = np.empty(shape, dtype=dtype)
    return buf


def _compile_tables(
    lut: LookupTable, table_dtype: Optional[np.dtype]
) -> Tuple[np.ndarray, float, bool]:
    """Pick the table representation: ``(base_table, table_scale, integer)``.

    Quantized LUTs execute in the integer domain (exact integer accumulation,
    one final multiply by the LUT scale); full-precision LUTs stay ``float64``
    so plan-based execution remains bit-exact with the reference kernel.  An
    explicit ``table_dtype`` (e.g. ``np.float32``) overrides the policy for
    callers trading exactness for memory.
    """
    if table_dtype is not None:
        return np.ascontiguousarray(lut.values, dtype=table_dtype), 1.0, False
    if lut.integer_values is not None:
        # Entries fit int32 for every supported LUT bitwidth (<= 16).
        return np.ascontiguousarray(lut.integer_values, dtype=np.int32), float(lut.scale), True
    return np.ascontiguousarray(lut.values, dtype=np.float64), 1.0, False


def _fused_epilogue(
    lut: LookupTable,
    indices: np.ndarray,
    table_scale: float,
    scale: Optional[float],
    zero_point: int,
    bias: Optional[np.ndarray],
) -> Tuple[float, Optional[np.ndarray]]:
    """Fold activation scale, zero-point correction and bias into ``α, β``.

    ``raw = table_scale · acc`` is the kernel output in the "integer
    activation × real weight" domain; the engine's dequantization
    ``scale · (raw − zero_point · Σw) + bias`` collapses to ``α·acc + β``.
    With ``scale=None`` the plan is a raw kernel (α = table_scale, no β),
    matching the functional :func:`~repro.core.bitserial.bitserial_conv2d`
    contract.
    """
    if scale is None:
        return table_scale, None
    f = indices.shape[0]
    w_sums = lut.pool_vector_sums()[indices].reshape(f, -1).sum(axis=1)  # (F,)
    beta = -float(scale) * float(zero_point) * w_sums
    if bias is not None:
        beta = beta + np.asarray(bias, dtype=np.float64)
    return float(scale) * table_scale, beta


@dataclass
class ConvKernelPlan:
    """Compiled execution plan for one weight-pool convolution layer.

    Call the plan with ``(N, C, H, W)`` unsigned integer activations; it
    returns ``(N, F, OH, OW)`` outputs with the fused epilogue applied.
    """

    group_size: int
    act_bitwidth: int
    stride: int
    padding: int
    pad_value: int
    kernel: Tuple[int, int]
    in_channels: int
    num_filters: int
    num_taps: int
    mode: str  # "direct" (F <= S) or "precompute" (F > S), paper §4.3
    # Bit-weighted tables: entry [j] is the (sub-)table pre-multiplied by 2^j
    # (exact for float64 — powers of two — and overflow-checked for int32).
    # direct: (M, G, 2^g, W) per-group sub-tables; precompute: (M, 2^g, S).
    tables: np.ndarray
    # (G, KH*KW*F) column into the stage-1 partials that each (kernel
    # position, filter) pair of a channel group reads, kernel-position-major.
    group_cols: np.ndarray
    partial_dtype: np.dtype  # stage-1 accumulator dtype (int32/int64/float)
    acc_dtype: np.dtype  # stage-2 accumulator dtype (int32/int64/float)
    integer: bool
    # Fused affine epilogue ``out = alpha * acc + beta``.  ``alpha`` is a
    # scalar for the plain engine epilogue; the network compiler widens it to
    # a per-filter ``(F,)`` array when BatchNorm is folded into the plan.
    alpha: float
    beta: Optional[np.ndarray]
    # Fused requantization ``(clip_lo, clip_hi, dtype)``: when set, the
    # epilogue result is rounded, clipped, and emitted as the next layer's
    # quantized-integer activations (``alpha``/``beta`` already include the
    # next layer's 1/scale and zero point) — the dequantize→quantize pair the
    # graph optimizer elides.  ``None`` keeps the float (dequantized) output.
    requant: Optional[Tuple[float, float, np.dtype]] = None
    # Padding hoist (network-compiler variant): execute stage 1 on the
    # *unpadded* image and inject the padded border's contribution — which is
    # a per-(group, column) constant, since every padding pixel encodes the
    # same all-``pad_value`` activation group — as compile-time constants
    # during the tap reduction.  Cuts the bit-encode and gather work by the
    # border fraction (11% at 32², 34% at 8² for 3×3/pad-1) and skips the
    # per-batch pad copy.  Changes only the float *order* of the tap sum, so
    # the per-layer engine keeps it off to preserve PR 1 bit-exactness.
    hoist_padding: bool = False
    # Compile-time per-group row offsets folding the group axis into the
    # direct-mode gather rows (hoisted out of ``_pool_partials``, which used
    # to rebuild this arange on every batch).
    row_offsets: Optional[np.ndarray] = None
    # Stage-2 schedule: "fused" gathers every kernel position's columns in
    # one wide ``np.take`` per channel group (PR 2's choice, fewest kernel
    # launches); "per_tap" gathers one kernel position at a time into a
    # small buffer that stays cache-hot across the strided adds.  The
    # accumulation order over (group, tap) is identical, so both schedules
    # produce bitwise-equal results; the ahead-of-time execution planner
    # (which fixes the micro-batch tile and supplies reusable scratch at
    # compile time — the regime where the narrow gather measures fastest)
    # selects "per_tap" for the plans it manages.
    tap_gather: str = "fused"
    # Address encoder: "packbits" (PR 1's unpackbits/packbits bit-matrix
    # transpose) or "bitmul" (the uint64 mask-multiply transpose, ~16× faster
    # for full 8-channel groups; identical addresses).  Another ahead-of-time
    # planner specialization — the pooled path keeps PR 2's execution.
    encoder: str = "packbits"

    # -- stage 1: per-pixel bit-serial pool partials ---------------------------
    def _encode_addresses(
        self, q_x: np.ndarray, pad: bool = True, scratch: Optional[dict] = None
    ) -> np.ndarray:
        """Per-bit LUT addresses ``(G, N, Hp, Wp, M)`` of the (padded) image.

        For the paper's configuration (group size and activation bitwidth both
        ≤ 8) the addresses are produced by ``np.packbits`` over uint8 data —
        a bit-matrix transpose at C speed; other configurations fall back to
        the generic :func:`~repro.core.bitserial.bit_vector_values` encoder.
        Inputs are range-validated by ``__call__`` before this runs.
        ``pad=False`` (the padding-hoist pipeline) encodes the raw image.
        With a ``scratch`` dict, the dtype-compaction and layout copies land
        in reused buffers instead of fresh per-call allocations (the
        unpackbits/packbits temporaries have no ``out=`` form and remain).
        """
        n = q_x.shape[0]
        fast = self.group_size <= 8 and self.act_bitwidth <= 8
        if fast and q_x.dtype != np.uint8:
            q8 = scratch_buf(scratch, "q8", q_x.shape, np.uint8)
            np.copyto(q8, q_x, casting="unsafe")
            q_x = q8
        if pad and self.padding:
            p = self.padding
            padded_shape = q_x.shape[:2] + (q_x.shape[2] + 2 * p, q_x.shape[3] + 2 * p)
            if scratch is None:
                q_x = np.pad(
                    q_x,
                    ((0, 0), (0, 0), (p,) * 2, (p,) * 2),
                    mode="constant",
                    constant_values=self.pad_value,
                )
            else:
                padded = scratch_buf(scratch, "padded", padded_shape, q_x.dtype)
                padded.fill(self.pad_value)
                padded[:, :, p:-p, p:-p] = q_x
                q_x = padded
        hp, wp = q_x.shape[2], q_x.shape[3]
        groups = self.in_channels // self.group_size
        grouped = q_x.reshape(n, groups, self.group_size, hp, wp).transpose(1, 0, 3, 4, 2)
        if not fast:
            return bit_vector_values(grouped, self.act_bitwidth)
        if scratch is None:
            grouped = np.ascontiguousarray(grouped)  # (G, N, Hp, Wp, g) uint8
        else:
            contig = scratch_buf(scratch, "grouped", grouped.shape, np.uint8)
            np.copyto(contig, grouped)
            grouped = contig
        if (
            self.encoder == "bitmul"
            and self.group_size == 8
            and sys.byteorder == "little"
        ):
            # uint64 bit-matrix transpose: one shift/and/multiply/shift pass
            # per bit position over the group words, no 8× bit expansion.
            words = grouped.view(np.uint64)[..., 0]  # (G, N, Hp, Wp)
            addresses = scratch_buf(
                scratch, "addr", grouped.shape[:-1] + (self.act_bitwidth,), np.uint8
            )
            lane = scratch_buf(scratch, "addr_lane", words.shape, np.uint64)
            for j in range(self.act_bitwidth):
                np.right_shift(words, np.uint64(j), out=lane)
                np.bitwise_and(lane, _BIT_LANES, out=lane)
                np.multiply(lane, _BIT_GATHER, out=lane)  # wraps mod 2^64 by design
                np.right_shift(lane, np.uint64(56), out=lane)
                addresses[..., j] = lane
            return addresses
        # The per-group addresses are the 8×8 bit-matrix transpose of the
        # group bytes: one unpackbits (byte → its 8 bits, little-endian) and
        # one packbits across the *group* axis (element i → address bit i)
        # produce every bit position's address in two C calls.
        bits = np.unpackbits(grouped[..., None], axis=-1, bitorder="little")
        addresses = np.packbits(bits, axis=-2, bitorder="little")[..., 0, :]
        if self.act_bitwidth < 8:
            addresses = addresses[..., : self.act_bitwidth]
        return addresses

    def _pool_partials(
        self, q_x: np.ndarray, bit_positions: List[int], scratch: Optional[dict] = None
    ) -> np.ndarray:
        """Shift-accumulated LUT partials per padded pixel and channel group.

        Returns ``pv`` of shape ``(G, N, Hp, Wp, W)`` where
        ``pv[g, n, y, x, s] = Σ_j 2^j · table_g[addr_j(n, g, y, x), s]`` —
        the bit-serial dot products of every (sub-)pool column with the
        activation group at one pixel.  Computed once per pixel; the
        convolution windows gather from it without touching bits again.
        """
        addresses = self._encode_addresses(q_x, scratch=scratch)
        groups, n, hp, wp, _ = addresses.shape
        width = self.tables.shape[-1]

        if self.mode == "direct":
            # Fold the group axis into the row index so every bit pass is one
            # flat row-gather (tables are stored (M, G, 2^g, W) contiguous).
            flat_tables = self.tables.reshape(self.act_bitwidth, -1, width)
            offsets = self.row_offsets
            if offsets is None:  # plans compiled before the hoist landed
                offsets = (
                    np.arange(groups, dtype=min_uint_dtype((groups << self.group_size) - 1))
                    << self.group_size
                ).reshape(groups, 1, 1, 1, 1)
            rows = scratch_buf(scratch, "rows", addresses.shape, offsets.dtype)
            np.copyto(rows, addresses, casting="unsafe")
            rows += offsets
        else:
            flat_tables = self.tables
            rows = addresses

        pv = scratch_buf(scratch, "pv", (groups, n, hp, wp, width), self.partial_dtype)
        if self.partial_dtype == self.tables.dtype:
            # Gather straight into the accumulator / a reused scratch buffer.
            gather: Optional[np.ndarray] = None
            for i, j in enumerate(bit_positions):
                if i == 0:
                    np.take(flat_tables[j], rows[..., j], axis=0, out=pv)
                else:
                    if gather is None:
                        gather = scratch_buf(scratch, "pv_gather", pv.shape, pv.dtype)
                    np.take(flat_tables[j], rows[..., j], axis=0, out=gather)
                    pv += gather
        else:
            # Mixed dtypes (e.g. int32 tables, int64 partials): gather, widen, add.
            pv.fill(0)
            for j in bit_positions:
                pv += flat_tables[j][rows[..., j]]
        return pv

    # -- stage 2: windowed tap reduction ---------------------------------------
    def _reduce_taps(
        self,
        pv: np.ndarray,
        oh: int,
        ow: int,
        stride: int,
        scratch_dict: Optional[dict] = None,
    ) -> np.ndarray:
        """Bit-free gather of each filter's column, then strided window sums.

        Per (channel group, kernel position), one contiguous ``np.take`` into
        a reused buffer pulls the column every filter uses for the whole
        padded image; the spatial reduction is then a pure strided slice-add.
        ``N·T·P·F``-order element reads in total, no bit dimension.
        """
        groups, n, hp, wp, _ = pv.shape
        kh, kw = self.kernel
        f = self.num_filters
        acc = scratch_buf(scratch_dict, "tap_acc", (n, oh, ow, f), self.acc_dtype)
        acc.fill(0)
        scratch = scratch_buf(scratch_dict, "tap_cols", (n, hp * wp, f), pv.dtype)
        image = scratch.reshape(n, hp, wp, f)
        for g in range(groups):
            flat = pv[g].reshape(n, hp * wp, -1)
            for k in range(kh * kw):
                ki, kj = divmod(k, kw)
                np.take(flat, self.group_cols[g, k * f : (k + 1) * f], axis=-1, out=scratch)
                acc += image[
                    :,
                    ki : ki + oh * stride : stride,
                    kj : kj + ow * stride : stride,
                ]
        return acc.transpose(0, 3, 1, 2)

    # -- padding-hoist pipeline (network-compiler variant) ---------------------
    def _pool_partials_grouped(
        self, q_x: np.ndarray, bit_positions: List[int], scratch: Optional[dict] = None
    ) -> np.ndarray:
        """Stage-1 partials of the *unpadded* image, gathered per channel group.

        Same per-element arithmetic (and dtype) as :meth:`_pool_partials`, but
        without the padded-image copy and without materialising the flat
        group-offset row tensor: each group gathers straight through its own
        sub-table slice.
        """
        addresses = self._encode_addresses(q_x, pad=False, scratch=scratch)
        groups, n, h, w, _ = addresses.shape
        width = self.tables.shape[-1]
        pv = scratch_buf(scratch, "pv", (groups, n, h, w, width), self.partial_dtype)
        gather: Optional[np.ndarray] = None
        for g in range(groups):
            tables_g = self.tables[:, g] if self.mode == "direct" else self.tables
            if self.partial_dtype == self.tables.dtype:
                for i, j in enumerate(bit_positions):
                    if i == 0:
                        np.take(tables_g[j], addresses[g, ..., j], axis=0, out=pv[g])
                    else:
                        if gather is None:
                            gather = scratch_buf(scratch, "pv_gather", pv.shape[1:], pv.dtype)
                        np.take(tables_g[j], addresses[g, ..., j], axis=0, out=gather)
                        pv[g] += gather
            else:
                pv[g].fill(0)
                for j in bit_positions:
                    pv[g] += tables_g[j][addresses[g, ..., j]]
        return pv

    def _border_constants(self, bit_positions: List[int]) -> np.ndarray:
        """Per-(group, column) stage-1 value of an all-``pad_value`` pixel.

        Every padding pixel encodes the same activation group, so its pool
        partials are constants: the bit-weighted table rows at address 0 or
        ``2^g − 1`` depending on each bit of the zero point.  Summed in the
        same bit order as the gather loop; cached per active-bit selection.
        """
        cache = getattr(self, "_border_cache", None)
        if cache is None:
            cache = {}
            self._border_cache = cache
        key = tuple(bit_positions)
        consts = cache.get(key)
        if consts is None:
            groups = self.in_channels // self.group_size
            all_ones = (1 << self.group_size) - 1
            consts = np.zeros((groups, self.tables.shape[-1]), dtype=self.acc_dtype)
            for g in range(groups):
                tables_g = self.tables[:, g] if self.mode == "direct" else self.tables
                for j in bit_positions:
                    address = all_ones if (self.pad_value >> j) & 1 else 0
                    consts[g] += tables_g[j][address].astype(self.acc_dtype, copy=False)
            cache[key] = consts
        return consts

    def _tap_bounds(self, ki: int, kj: int, h: int, w: int, oh: int, ow: int, stride: int):
        """In-bounds output window of one tap: y·s + ki − p ∈ [0, h)."""
        p = self.padding
        y0 = max(0, -((p - ki) // -stride))
        y1 = min(oh, (h - 1 - ki + p) // stride + 1)
        x0 = max(0, -((p - kj) // -stride))
        x1 = min(ow, (w - 1 - kj + p) // stride + 1)
        return y0, y1, x0, x1

    def _border_tensor(
        self, h: int, w: int, oh: int, ow: int, stride: int, bit_positions: List[int]
    ) -> np.ndarray:
        """Total padded-border contribution per output position, ``(OH, OW, F)``.

        Purely a function of the layer geometry, the zero point, and the
        active bit selection — independent of the batch — so it is computed
        once and cached; the hot tap reduction adds it in a single pass.
        """
        cache = getattr(self, "_border_tensor_cache", None)
        if cache is None:
            cache = {}
            self._border_tensor_cache = cache
        key = (h, w, oh, ow, stride, tuple(bit_positions))
        border = cache.get(key)
        if border is None:
            consts = self._border_constants(bit_positions)
            kh, kw = self.kernel
            f = self.num_filters
            groups = self.in_channels // self.group_size
            border = np.zeros((oh, ow, f), dtype=self.acc_dtype)
            for g in range(groups):
                for k in range(kh * kw):
                    y0, y1, x0, x1 = self._tap_bounds(*divmod(k, kw), h, w, oh, ow, stride)
                    cvec = consts[g][self.group_cols[g, k * f : (k + 1) * f]]
                    border += cvec
                    if y0 < y1 and x0 < x1:
                        border[y0:y1, x0:x1] -= cvec
            cache[key] = border
        return border

    def _reduce_taps_hoisted(
        self,
        pv: np.ndarray,
        oh: int,
        ow: int,
        stride: int,
        bit_positions: List[int],
        scratch_dict: Optional[dict] = None,
    ) -> np.ndarray:
        """Tap reduction over unpadded partials + cached border terms.

        Each tap adds its in-bounds window region directly; the contribution
        of taps that fall into the padding is the precomputed (batch-
        independent) :meth:`_border_tensor`, added in one pass at the end.
        """
        groups, n, h, w, _ = pv.shape
        kh, kw = self.kernel
        f = self.num_filters
        acc = scratch_buf(scratch_dict, "tap_acc", (n, oh, ow, f), self.acc_dtype)
        acc.fill(0)
        if self.tap_gather == "per_tap":
            # One narrow gather per (group, kernel position): the (N, H·W, F)
            # column buffer stays cache-resident across the strided adds,
            # which measures faster than the wide gather at the planner's
            # fixed micro-batch tiles.  Same (g, k) accumulation order as the
            # fused schedule — bitwise-equal results.
            cols = scratch_buf(scratch_dict, "tap_col", (n, h * w, f), pv.dtype)
            image = cols.reshape(n, h, w, f)
            for g in range(groups):
                flat = pv[g].reshape(n, h * w, -1)
                for k in range(kh * kw):
                    ki, kj = divmod(k, kw)
                    y0, y1, x0, x1 = self._tap_bounds(ki, kj, h, w, oh, ow, stride)
                    if y0 >= y1 or x0 >= x1:
                        continue
                    np.take(
                        flat, self.group_cols[g, k * f : (k + 1) * f], axis=-1, out=cols
                    )
                    ys = y0 * stride + ki - self.padding
                    xs = x0 * stride + kj - self.padding
                    acc[:, y0:y1, x0:x1] += image[
                        :,
                        ys : ys + (y1 - y0) * stride : stride,
                        xs : xs + (x1 - x0) * stride : stride,
                    ]
        else:
            # One gather per channel group covering every kernel position at
            # once (the per-tap loop then adds strided views) — KH·KW× fewer
            # kernel launches; PR 2's schedule, kept for the pooled path.
            scratch = scratch_buf(scratch_dict, "tap_cols", (n, h * w, kh * kw * f), pv.dtype)
            taps = scratch.reshape(n, h, w, kh * kw, f)
            for g in range(groups):
                flat = pv[g].reshape(n, h * w, -1)
                np.take(flat, self.group_cols[g], axis=-1, out=scratch)
                for k in range(kh * kw):
                    ki, kj = divmod(k, kw)
                    y0, y1, x0, x1 = self._tap_bounds(ki, kj, h, w, oh, ow, stride)
                    if y0 < y1 and x0 < x1:
                        ys = y0 * stride + ki - self.padding
                        xs = x0 * stride + kj - self.padding
                        acc[:, y0:y1, x0:x1] += taps[
                            :,
                            ys : ys + (y1 - y0) * stride : stride,
                            xs : xs + (x1 - x0) * stride : stride,
                            k,
                        ]
        if self.padding:
            acc += self._border_tensor(h, w, oh, ow, stride, bit_positions)[None]
        return acc.transpose(0, 3, 1, 2)

    # -- memory ----------------------------------------------------------------
    def _batch_chunk(self, hp: int, wp: int) -> int:
        groups = self.in_channels // self.group_size
        per_image = max(
            hp * wp * (groups * self.tables.shape[-1] + self.num_filters)
            * self.partial_dtype.itemsize,
            1,
        )
        return max(1, _GATHER_BUDGET_BYTES // per_image)

    # -- execution -------------------------------------------------------------
    def __call__(
        self,
        q_x: np.ndarray,
        active_bits: Optional[int] = None,
        validated: bool = False,
        out: Optional[np.ndarray] = None,
        scratch: Optional[dict] = None,
    ) -> np.ndarray:
        """Execute the plan on unsigned-integer activations.

        ``validated=True`` skips the int64 conversion and range check — the
        graph executor passes it for buffers whose producer (a clipped
        quantize/requantize op) guarantees in-range unsigned values, removing
        one full pass over the activations per layer.

        ``out`` (shape ``(N, F, OH, OW)``, the epilogue's output dtype)
        receives the result in place — the arena executor passes a view into
        its planned arena.  The input is fully consumed before ``out`` is
        first written, so ``out`` may safely reuse ``q_x``'s storage.
        ``scratch`` (see :func:`scratch_buf`) recycles every internal
        temporary across calls; both default to the allocate-per-call
        behaviour and change nothing numerically.
        """
        if not validated:
            q_x = np.asarray(q_x, dtype=np.int64)
        if q_x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) activations, got {q_x.shape}")
        n, c, h, w = q_x.shape
        if c != self.in_channels:
            raise ValueError(
                f"indices expect {self.in_channels} channels, activations have {c}"
            )
        if not validated:
            # Validate once here; the encoders below assume in-range values.
            _validate_unsigned(q_x, self.act_bitwidth, "bit-serial kernels")
        bit_positions = active_bit_positions(self.act_bitwidth, active_bits)
        kh, kw = self.kernel
        oh = conv_output_size(h, kh, self.stride, self.padding)
        ow = conv_output_size(w, kw, self.stride, self.padding)

        stride = self.stride
        if kh == kw == 1 and stride > 1 and self.padding == 0:
            # Pointwise downsample: only every stride-th pixel is ever read,
            # so drop the others before the bit-serial stage.
            q_x = q_x[:, :, ::stride, ::stride]
            stride = 1
        acc = scratch_buf(scratch, "acc", (n, self.num_filters, oh, ow), self.acc_dtype)
        chunk = self._batch_chunk(h + 2 * self.padding, w + 2 * self.padding)
        for n0 in range(0, n, chunk):
            n1 = min(n, n0 + chunk)
            if self.hoist_padding:
                pv = self._pool_partials_grouped(q_x[n0:n1], bit_positions, scratch)
                acc[n0:n1] = self._reduce_taps_hoisted(
                    pv, oh, ow, stride, bit_positions, scratch
                )
            else:
                pv = self._pool_partials(q_x[n0:n1], bit_positions, scratch)
                acc[n0:n1] = self._reduce_taps(pv, oh, ow, stride, scratch)
        return self._apply_epilogue(acc, out, scratch)

    def _apply_epilogue(
        self, acc: np.ndarray, out: Optional[np.ndarray], scratch: Optional[dict]
    ) -> np.ndarray:
        """``α·acc + β`` (+ requant clip), into ``out`` when provided.

        The ``out`` path runs the exact same ufunc sequence as the
        allocate-per-call path (multiply/add/rint/clip and one final cast),
        so results are bitwise identical either way.
        """
        alpha = self.alpha
        if np.ndim(alpha):  # per-filter alpha (BatchNorm folded into the epilogue)
            alpha = np.asarray(alpha, dtype=np.float64).reshape(1, -1, 1, 1)
            scale = True
        else:
            scale = self.integer or alpha != 1.0
        if out is not None:
            # Float math lands in `out` directly when `out` is the float
            # result; fused requantization rounds in a float scratch and
            # casts into `out` at the end.
            res = out if self.requant is None else scratch_buf(scratch, "epi", acc.shape, np.float64)
            if scale:
                np.multiply(acc, alpha, out=res)
            else:
                np.copyto(res, acc)
        elif scale:
            res = acc * alpha  # fresh product; `acc` may live in scratch
        else:
            # With a scratch dict `acc` is a reused buffer the next call
            # overwrites — the result must not alias it.
            res = acc.astype(np.float64, copy=scratch is not None)
        if self.beta is not None:
            np.add(res, self.beta.reshape(1, -1, 1, 1), out=res)
        if self.requant is not None:
            lo, hi, dtype = self.requant
            np.rint(res, out=res)
            np.clip(res, lo, hi, out=res)
            if out is None:
                return res.astype(dtype, copy=False)
            np.copyto(out, res, casting="unsafe")
        return res if out is None else out


def compile_conv_plan(
    indices: np.ndarray,
    lut: LookupTable,
    stride: int = 1,
    padding: int = 0,
    act_bitwidth: int = 8,
    pad_value: int = 0,
    scale: Optional[float] = None,
    zero_point: int = 0,
    bias: Optional[np.ndarray] = None,
    table_dtype: Optional[np.dtype] = None,
    hoist_padding: bool = False,
) -> ConvKernelPlan:
    """Compile a convolution kernel plan for one weight-pool layer.

    With ``scale=None`` the plan computes the raw ``sum q·w`` domain exactly
    like :func:`~repro.core.bitserial.bitserial_conv2d`; passing the
    activation ``scale``/``zero_point`` (and optionally ``bias``) fuses the
    whole dequantization epilogue into the plan.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 4:
        raise ValueError(f"expected (F, C/g, KH, KW) indices, got {indices.shape}")
    if indices.size and (indices.min() < 0 or indices.max() >= lut.pool_size):
        raise ValueError("pool index out of range for this LUT")
    f, groups, kh, kw = indices.shape
    taps = groups * kh * kw

    base, table_scale, integer = _compile_tables(lut, table_dtype)
    alpha, beta = _fused_epilogue(lut, indices, table_scale, scale, zero_point, bias)

    if f <= lut.pool_size:
        # Direct mode: pre-gather only the LUT columns each channel group
        # uses, and remap the layer's pool indices into that compact space.
        mode = "direct"
        used = [np.unique(indices[:, g]) for g in range(groups)]
        width = max(len(u) for u in used)
        sub = np.zeros((groups, base.shape[0], width), dtype=base.dtype)
        local = np.empty_like(indices)
        for g, u in enumerate(used):
            sub[g, :, : len(u)] = base[:, u]
            local[:, g] = np.searchsorted(u, indices[:, g])
    else:
        # Precompute mode (F > S): per-pool-vector partials, shared table.
        mode = "precompute"
        sub = base
        local = indices

    # Pre-scale the tables by every bit weight (exact: powers of two), so the
    # per-bit execution pass is a pure gather-add.
    bit_weights = (1 << np.arange(act_bitwidth, dtype=np.int64)).reshape(
        (act_bitwidth,) + (1,) * sub.ndim
    )
    if integer:
        tables = sub.astype(np.int64)[None] * bit_weights

        def _int_dtype(bound: int) -> np.dtype:
            for candidate in (np.int16, np.int32, np.int64):
                if bound <= np.iinfo(candidate).max:
                    return np.dtype(candidate)
            raise ValueError(f"integer bound {bound} exceeds int64")

        tables = tables.astype(_int_dtype(int(np.abs(tables).max(initial=0))))
        # Stage-1 partials sum the bit-weighted entries over at most M bits
        # (for the default 8-bit LUT × 8-bit activations this fits int16,
        # halving the gather traffic); stage-2 additionally sums the T taps.
        partial_bound = ((1 << act_bitwidth) - 1) * int(np.abs(sub).max(initial=0))
        partial_dtype = _int_dtype(partial_bound)
        acc_dtype = max(_int_dtype(taps * partial_bound), np.dtype(np.int32))
    else:
        # Bit weights are powers of two: exact in any float dtype.
        tables = sub[None] * bit_weights.astype(sub.dtype)
        partial_dtype = tables.dtype
        acc_dtype = tables.dtype
    tables = np.ascontiguousarray(tables)
    if padding and not 0 <= pad_value < (1 << act_bitwidth):
        raise ValueError(
            f"pad_value {pad_value} does not fit in {act_bitwidth} bits"
        )

    # Stage-2 gather columns, kernel-position-major per channel group.
    group_cols = np.ascontiguousarray(
        local.transpose(1, 2, 3, 0).reshape(groups, kh * kw * f)
    ).astype(np.intp)

    # Direct-mode row offsets folding the group axis into the flat gather
    # rows: purely a function of the layer geometry, so built here instead of
    # on every batch.
    row_offsets = None
    if mode == "direct":
        offset_dtype = min_uint_dtype((groups << lut.group_size) - 1)
        row_offsets = (
            np.arange(groups, dtype=offset_dtype) << lut.group_size
        ).reshape(groups, 1, 1, 1, 1)

    return ConvKernelPlan(
        group_size=lut.group_size,
        act_bitwidth=act_bitwidth,
        stride=stride,
        padding=padding,
        pad_value=pad_value,
        kernel=(kh, kw),
        in_channels=groups * lut.group_size,
        num_filters=f,
        num_taps=taps,
        mode=mode,
        tables=tables,
        group_cols=group_cols,
        partial_dtype=partial_dtype,
        acc_dtype=acc_dtype,
        integer=integer,
        alpha=alpha,
        beta=beta,
        hoist_padding=hoist_padding,
        row_offsets=row_offsets,
    )


@dataclass
class LinearKernelPlan:
    """Compiled execution plan for one weight-pool linear layer.

    Internally a 1×1 convolution plan over a 1×1 "image"; call with
    ``(N, in_features)`` unsigned integer activations.
    """

    conv_plan: ConvKernelPlan

    def __call__(
        self,
        q_x: np.ndarray,
        active_bits: Optional[int] = None,
        validated: bool = False,
        out: Optional[np.ndarray] = None,
        scratch: Optional[dict] = None,
    ) -> np.ndarray:
        if not validated:
            q_x = np.asarray(q_x, dtype=np.int64)
        if q_x.ndim != 2:
            raise ValueError("bitserial_linear expects 2D activations and 2D indices")
        n, in_features = q_x.shape
        if in_features != self.conv_plan.in_channels:
            raise ValueError(
                f"indices expect {self.conv_plan.in_channels} inputs, "
                f"activations have {in_features}"
            )
        res = self.conv_plan(
            q_x.reshape(n, in_features, 1, 1),
            active_bits=active_bits,
            validated=validated,
            out=None if out is None else out.reshape(n, -1, 1, 1),
            scratch=scratch,
        )
        return res.reshape(n, self.conv_plan.num_filters)


def compile_linear_plan(
    indices: np.ndarray,
    lut: LookupTable,
    act_bitwidth: int = 8,
    scale: Optional[float] = None,
    zero_point: int = 0,
    bias: Optional[np.ndarray] = None,
    table_dtype: Optional[np.dtype] = None,
) -> LinearKernelPlan:
    """Compile a kernel plan for a fully-connected weight-pool layer."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 2:
        raise ValueError("bitserial_linear expects 2D activations and 2D indices")
    conv_plan = compile_conv_plan(
        indices[:, :, None, None],
        lut,
        stride=1,
        padding=0,
        act_bitwidth=act_bitwidth,
        pad_value=0,
        scale=scale,
        zero_point=zero_point,
        bias=bias,
        table_dtype=table_dtype,
    )
    return LinearKernelPlan(conv_plan=conv_plan)
