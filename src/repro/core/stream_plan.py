"""Streaming execution: dirty-tile incremental inference over frame streams.

The paper ablates *memoization* against pool precomputation, but until now it
survived only as an MCU cycle cost model (`repro.mcu.kernels.memoization`) —
the host pipeline recomputed every frame from scratch even when consecutive
inputs were nearly identical.  This module exploits that temporal redundancy
on the host: a :class:`StreamSession` keeps the previous frame's full
intermediate state, diffs each incoming frame into a tile-granular change
map, and re-executes only the dirty region of every step of the planned
schedule.

Compile-time propagation metadata
---------------------------------
:func:`compile_stream_plan` walks the plan backend's bound schedule (the
same :class:`~repro.core.program.Step` list the arena planner consumes) and
derives one :class:`StreamRule` per step:

==================  =========================================================
rule                steps
==================  =========================================================
``pass``            elementwise glue — quantize, batchnorm, activation,
                    pad_channels, add, dequantize/requantize: the output
                    dirty region equals the input region.
``dilate``          windowed ops — bit-serial/float convs and avg/max pools:
                    the output region is the input region dilated by the
                    receptive field (``kernel``/``stride``/``padding``), and
                    the *input crop* read back is the output region's halo.
``cutoff``          flatten, linear, bit-serial linear, global-average pool:
                    any dirty input invalidates the whole (non-spatial)
                    output; the step and everything after it recompute in
                    full each frame.  The head is cheap — this is the
                    classic full-recompute cutoff.
==================  =========================================================

Bit-exactness strategy (threshold 0 ⇒ identical results):

* Elementwise crops run the *same ufunc sequence per element* as the full
  step, so crops are bitwise equal by construction.
* Bit-serial convolutions accumulate integer partials — order-independent —
  so a crop through a **padding-0 clone** of the step's compiled
  :class:`~repro.core.kernel_plan.ConvKernelPlan` (the halo is materialized
  explicitly, borders pre-padded with the layer zero point) reproduces the
  full plan's outputs exactly, including the fused ``α·acc + β`` epilogue.
* Float convs reduce over the channel/kernel axis only (im2col + GEMM), so
  each output pixel is an independent dot product and a halo crop is
  bitwise-equal on this stack; the compile-time verification below is the
  backstop on hosts where the BLAS reduction order does depend on the
  spatial extent.  Float *linears* sit behind the cutoff and always run in
  full.
* Pool crops are aligned to whole pooling windows so the windowed
  reshape-reduce sees exactly the windows the full step sees.

On top of the construction, :func:`compile_stream_plan` *verifies* the
incremental path at compile time — a perturbed frame is executed both ways
and every intermediate buffer compared bitwise; any step that deviates is
demoted to full-frame execution (an autotuner-style "prove it on the spot"
gate: never a wrong answer, only less savings).

Crossover fallback
------------------
Incremental execution has bookkeeping overhead (diffing, halo crops, slice
writes), so above some dirty fraction it is *slower* than simply rerunning
the whole schedule.  The compile step measures both paths and records the
crossover dirty fraction — like autotune decisions — under the executor's
``plan_info["stream"]`` and the program's pipeline report
(``stream_plan`` pass).  Sessions above the crossover fall back to a full
refresh (which also keeps their persistent state warm).
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import record_stage_report
from repro.core.program import Executor, NetworkProgram, Step

__all__ = [
    "StreamUnsupported",
    "StreamRule",
    "StreamPlan",
    "StreamSession",
    "compile_stream_plan",
    "stream_support",
]


class StreamUnsupported(RuntimeError):
    """The program cannot execute incrementally (and why)."""

    def __init__(self, message: str, reason: str = "stream_unsupported"):
        super().__init__(message)
        self.reason = reason


# Op kinds whose dirty region passes through unchanged (same spatial grid,
# per-element math).
_PASS_KINDS = frozenset(
    {"quantize", "batchnorm", "activation", "pad_channels", "add",
     "dequantize", "requantize"}
)
# Op kinds that end spatial propagation: everything from the first dirty
# cutoff step on recomputes in full each frame.
_CUTOFF_KINDS = frozenset({"flatten", "linear", "bitserial_linear"})


# ---------------------------------------------------------------------------
# Static support metadata (artifact headers / serve capability gating)
# ---------------------------------------------------------------------------

def stream_support(program: NetworkProgram) -> Dict[str, Any]:
    """Static streaming-capability summary of a program (no compile needed).

    Stored in artifact headers by :func:`repro.core.export.save_program`
    (schema ≥ 3) and surfaced by ``read_program_metadata``, so a server can
    reject streaming requests against incapable — or pre-schema — artifacts
    with a clear ``stream_unsupported`` reason instead of a KeyError.
    """
    rules: List[Dict[str, Any]] = []
    supported = len(program.input_shape) == 3
    cutoff_index: Optional[int] = None
    for i, op in enumerate(program.ops):
        if op.kind in ("bitserial_conv", "conv"):
            rule = {
                "op": op.name or op.kind,
                "kind": op.kind,
                "rule": "dilate",
                "kernel": _op_kernel(op),
                "stride": int(op.attrs.get("stride", 1)),
                "padding": int(op.attrs.get("padding", 0)),
            }
        elif op.kind == "pool" and op.attrs.get("pool") != "global_avg":
            k = int(op.attrs.get("kernel", 1))
            rule = {
                "op": op.name or op.kind,
                "kind": op.kind,
                "rule": "dilate",
                "kernel": [k, k],
                "stride": k,
                "padding": 0,
            }
        elif op.kind in _CUTOFF_KINDS or op.kind == "pool":
            rule = {"op": op.name or op.kind, "kind": op.kind, "rule": "cutoff"}
            if cutoff_index is None:
                cutoff_index = i
        elif op.kind in _PASS_KINDS:
            rule = {"op": op.name or op.kind, "kind": op.kind, "rule": "pass"}
        else:
            rule = {"op": op.name or op.kind, "kind": op.kind, "rule": "unknown"}
            supported = False
        rules.append(rule)
    return {
        "supported": bool(supported),
        "rules": rules,
        "cutoff_index": cutoff_index,
    }


def _op_kernel(op) -> List[int]:
    """(KH, KW) of a conv-like op, from attrs or the index tensor."""
    if "kernel" in op.attrs:
        k = op.attrs["kernel"]
        return [int(k), int(k)] if np.isscalar(k) else [int(k[0]), int(k[1])]
    weight = op.attrs.get("weight")
    if weight is not None:
        return [int(weight.shape[-2]), int(weight.shape[-1])]
    indices = op.attrs.get("indices")
    if indices is not None and indices.ndim >= 4:
        return [int(indices.shape[-2]), int(indices.shape[-1])]
    return [1, 1]


# ---------------------------------------------------------------------------
# Propagation rules over the bound schedule
# ---------------------------------------------------------------------------

#: Pixel-space dirty region of one buffer: ``(y0, y1, x0, x1)`` half-open.
Region = Tuple[int, int, int, int]


@dataclass
class StreamRule:
    """How one bound schedule step propagates and executes a dirty region.

    ``kind`` is the propagation rule (``pass``/``dilate``/``cutoff``);
    ``mode`` is how the step executes when its input is dirty: ``crop``
    re-executes only the dilated region in place, ``full`` reruns the whole
    step (float convs, and any step the compile-time bitwise verification
    demoted).
    """

    kind: str  # "pass" | "dilate" | "cutoff"
    mode: str  # "crop" | "full"
    kernel: Tuple[int, int] = (1, 1)
    stride: int = 1
    padding: int = 0
    align: int = 1  # output-region alignment (pool windows)
    demoted: bool = False  # verification demoted a crop step to full

    def out_region(self, region: Region, out_hw: Tuple[int, int]) -> Region:
        """Dilate an input dirty region to the affected output region."""
        if self.kind == "pass":
            y0, y1, x0, x1 = region
        else:
            iy0, iy1, ix0, ix1 = region
            kh, kw = self.kernel
            s, p = self.stride, self.padding
            # Output pixel oy reads input rows [oy*s - p, oy*s - p + kh):
            # the window intersects [iy0, iy1) iff oy*s - p < iy1 and
            # oy*s - p + kh > iy0.
            y0 = max(0, -(-(iy0 - kh + 1 + p) // s))
            y1 = (iy1 - 1 + p) // s + 1
            x0 = max(0, -(-(ix0 - kw + 1 + p) // s))
            x1 = (ix1 - 1 + p) // s + 1
        oh, ow = out_hw
        y0, y1 = max(0, min(y0, oh)), max(0, min(y1, oh))
        x0, x1 = max(0, min(x0, ow)), max(0, min(x1, ow))
        if self.align > 1:
            a = self.align
            y0, x0 = (y0 // a) * a, (x0 // a) * a
            y1, x1 = min(oh, -(-y1 // a) * a), min(ow, -(-x1 // a) * a)
        return (y0, y1, x0, x1)

    def in_window(self, out_region: Region, in_hw: Tuple[int, int]) -> Region:
        """The (unclamped) input window the output region reads — its halo."""
        y0, y1, x0, x1 = out_region
        if self.kind == "pass":
            return out_region
        kh, kw = self.kernel
        s, p = self.stride, self.padding
        return (
            y0 * s - p,
            (y1 - 1) * s + kh - p,
            x0 * s - p,
            (x1 - 1) * s + kw - p,
        )


def _classify_step(step: Step) -> StreamRule:
    op = step.op
    if op is None:
        # Backend-synthesized step with no IR op: cannot reason about it.
        raise StreamUnsupported("schedule step carries no IR op")
    kind = op.kind
    if kind == "bitserial_conv":
        kh, kw = _op_kernel(op)
        return StreamRule(
            kind="dilate", mode="crop", kernel=(kh, kw),
            stride=int(op.attrs.get("stride", 1)),
            padding=int(op.attrs.get("padding", 0)),
        )
    if kind == "conv":
        kh, kw = _op_kernel(op)
        # Float convs reduce over the channel/kernel axis only (im2col +
        # GEMM): each output pixel is an independent dot product, so a halo
        # crop reproduces the full result bit for bit on this stack.  The
        # compile-time verification is the backstop — a host/BLAS whose
        # reduction order does depend on the spatial extent demotes the
        # step to full-frame execution.
        return StreamRule(
            kind="dilate", mode="crop", kernel=(kh, kw),
            stride=int(op.attrs.get("stride", 1)),
            padding=int(op.attrs.get("padding", 0)),
        )
    if kind == "pool":
        if op.attrs.get("pool") == "global_avg":
            return StreamRule(kind="cutoff", mode="full")
        k = int(op.attrs["kernel"])
        return StreamRule(
            kind="dilate", mode="crop", kernel=(k, k), stride=k, padding=0,
        )
    if kind in _CUTOFF_KINDS:
        return StreamRule(kind="cutoff", mode="full")
    if kind in _PASS_KINDS:
        spatial = len(op.out_shape) == 3
        return StreamRule(kind="pass", mode="crop" if spatial else "full")
    raise StreamUnsupported(f"op kind '{kind}' has no streaming rule")


# ---------------------------------------------------------------------------
# Crop executors (bitwise-equal re-execution of one step's dirty region)
# ---------------------------------------------------------------------------

def _clone_conv_plan(plan) -> Any:
    """A padding-0, hoist-off shallow clone of a compiled conv plan.

    Shares the (immutable) LUT sub-tables and the folded epilogue terms;
    only the border handling changes — the streaming executor materializes
    the halo crop explicitly (pre-padded with the layer zero point), so the
    clone sees a borderless problem.  Integer accumulation makes the result
    bitwise equal to the original plan's, whatever ``hoist_padding``/
    ``tap_gather``/``encoder`` variant the autotuner picked for it.
    """
    clone = copy.copy(plan)
    clone.padding = 0
    clone.hoist_padding = False
    return clone


def _crop_with_halo(
    buf: np.ndarray, window: Region, padding_value: int | float
) -> np.ndarray:
    """Slice ``window`` out of a (1, C, H, W) buffer, padding out-of-range
    rows/cols with ``padding_value`` (a conv's halo at the image border)."""
    y0, y1, x0, x1 = window
    h, w = buf.shape[2], buf.shape[3]
    cy0, cy1 = max(y0, 0), min(y1, h)
    cx0, cx1 = max(x0, 0), min(x1, w)
    crop = buf[:, :, cy0:cy1, cx0:cx1]
    pads = (cy0 - y0, y1 - cy1, cx0 - x0, x1 - cx1)
    if any(pads):
        crop = np.pad(
            crop,
            ((0, 0), (0, 0), (pads[0], pads[1]), (pads[2], pads[3])),
            mode="constant",
            constant_values=padding_value,
        )
    return crop


def _elementwise_crop_fn(step: Step) -> Callable:
    """Crop executor of an elementwise step: same per-element ufunc sequence
    as the bound full-step fn, restricted to the region."""
    op = step.op
    kind, attrs = op.kind, op.attrs

    if kind == "quantize":
        params = attrs["params"]
        out_dtype = np.dtype(np.uint8 if params.bitwidth <= 8 else np.uint16)
        clip_lo = attrs.get("clip_lo", params.qmin)
        clip_hi = attrs.get("clip_hi", params.qmax)

        def fn(bufs, region, ins, out):
            y0, y1, x0, x1 = region
            q = bufs[ins[0]][:, :, y0:y1, x0:x1] / params.scale
            np.rint(q, out=q)
            q += params.zero_point
            np.clip(q, clip_lo, clip_hi, out=q)
            bufs[out][:, :, y0:y1, x0:x1] = q.astype(out_dtype, copy=False)

        return fn

    if kind == "pad_channels":
        channels = op.in_shape[0]
        value = attrs["value"]

        def fn(bufs, region, ins, out):
            y0, y1, x0, x1 = region
            dst = bufs[out][:, :, y0:y1, x0:x1]
            dst[:, :channels] = bufs[ins[0]][:, :, y0:y1, x0:x1]
            dst[:, channels:] = value

        return fn

    if kind == "batchnorm":
        mean = attrs["mean"].reshape(1, -1, 1, 1)
        inv_std = attrs["inv_std"].reshape(1, -1, 1, 1)
        gamma = attrs["gamma"].reshape(1, -1, 1, 1)
        beta = attrs["beta"].reshape(1, -1, 1, 1)

        def fn(bufs, region, ins, out):
            y0, y1, x0, x1 = region
            dst = bufs[out][:, :, y0:y1, x0:x1]
            np.subtract(bufs[ins[0]][:, :, y0:y1, x0:x1], mean, out=dst)
            np.multiply(dst, inv_std, out=dst)
            np.multiply(dst, gamma, out=dst)
            np.add(dst, beta, out=dst)

        return fn

    if kind == "activation":
        if attrs["fn"] == "relu6":
            def fn(bufs, region, ins, out):
                y0, y1, x0, x1 = region
                np.clip(
                    bufs[ins[0]][:, :, y0:y1, x0:x1], 0.0, 6.0,
                    out=bufs[out][:, :, y0:y1, x0:x1],
                )
            return fn

        def fn(bufs, region, ins, out):
            y0, y1, x0, x1 = region
            src = bufs[ins[0]][:, :, y0:y1, x0:x1]
            np.maximum(
                src, src.dtype.type(0), out=bufs[out][:, :, y0:y1, x0:x1]
            )

        return fn

    if kind == "add":
        def fn(bufs, region, ins, out):
            y0, y1, x0, x1 = region
            np.add(
                bufs[ins[0]][:, :, y0:y1, x0:x1],
                bufs[ins[1]][:, :, y0:y1, x0:x1],
                out=bufs[out][:, :, y0:y1, x0:x1],
            )
        return fn

    if kind in ("dequantize", "requantize"):
        # Standalone epilogues only exist on unfused schedules (the plan
        # backend fuses them into the kernel plan); keep the reference
        # association, restricted to the region.
        full = step.fn

        def fn(bufs, region, ins, out):
            y0, y1, x0, x1 = region
            bufs[out][:, :, y0:y1, x0:x1] = full(
                bufs[ins[0]][:, :, y0:y1, x0:x1]
            )

        return fn

    raise StreamUnsupported(f"no elementwise crop executor for '{kind}'")


def _pool_crop_fn(step: Step) -> Callable:
    variant = step.op.attrs["pool"]
    k = int(step.op.attrs["kernel"])

    def fn(bufs, region, ins, out):
        y0, y1, x0, x1 = region  # output region, window-aligned by the rule
        crop = bufs[ins[0]][:, :, y0 * k : y1 * k, x0 * k : x1 * k]
        n, c = crop.shape[:2]
        windows = crop.reshape(n, c, y1 - y0, k, x1 - x0, k)
        if variant == "max":
            bufs[out][:, :, y0:y1, x0:x1] = windows.max(axis=(3, 5))
        else:
            bufs[out][:, :, y0:y1, x0:x1] = windows.mean(axis=(3, 5))

    return fn


def _float_conv_crop_fn(step: Step, rule: StreamRule) -> Callable:
    attrs = step.op.attrs
    weight, bias = attrs["weight"], attrs["bias"]
    stride, groups = attrs["stride"], attrs["groups"]

    def fn(bufs, region, ins, out):
        from repro.nn import functional as F

        window = rule.in_window(region, bufs[ins[0]].shape[2:])
        crop = _crop_with_halo(bufs[ins[0]], window, 0.0)
        res = F.conv2d_forward(crop, weight, bias, stride, 0, groups)[0]
        y0, y1, x0, x1 = region
        bufs[out][:, :, y0:y1, x0:x1] = res

    return fn


def _conv_crop_fn(step: Step, rule: StreamRule, active_bits: Optional[int]) -> Callable:
    plan = step.plan
    clone = _clone_conv_plan(plan)
    pad_value = int(getattr(plan, "pad_value", 0))
    validated = step.validated

    def fn(bufs, region, ins, out):
        window = rule.in_window(region, bufs[ins[0]].shape[2:])
        crop = _crop_with_halo(bufs[ins[0]], window, pad_value)
        res = clone(crop, active_bits=active_bits, validated=validated)
        y0, y1, x0, x1 = region
        np.copyto(bufs[out][:, :, y0:y1, x0:x1], res, casting="unsafe")

    return fn


# ---------------------------------------------------------------------------
# The compiled stream plan
# ---------------------------------------------------------------------------

@dataclass
class _BoundStreamStep:
    step: Step
    rule: StreamRule
    crop_fn: Optional[Callable]  # None => full-frame execution


class StreamPlan:
    """Compile-once streaming machinery shared by every session of a program.

    Holds the full-recompute oracle (:class:`Executor` on the plan backend),
    the bound schedule annotated with :class:`StreamRule` propagation
    metadata and crop executors, and the measured incremental-vs-full
    crossover.  Sessions (:meth:`session`) own the per-stream state.
    """

    def __init__(
        self,
        program: NetworkProgram,
        executor: Executor,
        steps: List[_BoundStreamStep],
        tile: int,
        crossover: float,
        record: Dict[str, Any],
    ):
        self.program = program
        self.executor = executor
        self.steps = steps
        self.tile = int(tile)
        self.crossover = float(crossover)
        self.record = record
        self.input_shape = tuple(program.input_shape)
        # Pooled (unoptimized) executors recycle buffers through an unlocked
        # free list; full-step fns must not race it across sessions.
        self._full_lock = threading.Lock() if executor.exec_plan is None else None

    # -- bookkeeping ---------------------------------------------------------
    @property
    def counters(self) -> Dict[str, Any]:
        return dict(self.record)

    def session(self, threshold: float = 0.0) -> "StreamSession":
        """A new stream session (threshold 0 ⇒ bit-exact incremental)."""
        return StreamSession(self, threshold=threshold)

    # -- full-frame schedule execution ---------------------------------------
    def run_full(self, bufs: Dict[int, np.ndarray], x: np.ndarray) -> np.ndarray:
        """Execute the whole bound schedule into ``bufs`` (persistent state).

        Same step fns in the same order as the executor's pooled path, so
        the result is bitwise identical to :meth:`Executor.run` — asserted
        at compile time by :func:`compile_stream_plan`.
        """
        lock = self._full_lock
        if lock is not None:
            lock.acquire()
        try:
            # An owned copy: sessions patch the dirty region of this buffer
            # in place on later frames, so it must never alias caller memory.
            bufs[self.program.input_id] = np.array(x, dtype=np.float64)
            for bound in self.steps:
                step = bound.step
                bufs[step.output] = step.fn(*[bufs[b] for b in step.inputs])
            return bufs[self.program.output_id]
        finally:
            if lock is not None:
                lock.release()


class StreamSession:
    """Per-stream state: the previous frame's full intermediate buffers.

    ``process(frame)`` diffs the frame against the session's reference
    frame at tile granularity, dilates the dirty bounding box through the
    propagation rules, and re-executes only that region of each step in
    place — falling back to a full refresh on the first frame, above the
    measured crossover fraction, or after a fault (:meth:`reset`).

    Sessions are single-stream objects: callers (the serve layer) must not
    interleave ``process`` calls from multiple threads.
    """

    def __init__(self, plan: StreamPlan, threshold: float = 0.0):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.plan = plan
        self.threshold = float(threshold)
        self.buffers: Dict[int, np.ndarray] = {}
        self._prev: Optional[np.ndarray] = None  # reference frame, (1,C,H,W)
        self.frames = 0
        self.full_frames = 0
        self.incremental_frames = 0
        self.cached_frames = 0
        self.dirty_fraction_sum = 0.0
        self.last_used: float = 0.0  # maintained by the serve layer

    # -- introspection -------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Persistent per-session state (deduplicated against views)."""
        seen: Dict[int, int] = {}
        for arr in self.buffers.values():
            base = arr if arr.base is None else arr.base
            seen[id(base)] = base.nbytes
        if self._prev is not None:
            seen[id(self._prev)] = self._prev.nbytes
        return int(sum(seen.values()))

    def stats(self) -> Dict[str, Any]:
        frames = max(1, self.incremental_frames)
        return {
            "frames": self.frames,
            "full": self.full_frames,
            "incremental": self.incremental_frames,
            "cached": self.cached_frames,
            "avg_dirty_fraction": self.dirty_fraction_sum / frames,
            "state_bytes": self.nbytes,
        }

    def reset(self) -> None:
        """Drop all persistent state; the next frame recomputes in full.

        The serve layer's fault path: a crashed/poisoned session resets and
        retries, so a failure can delay an answer but never corrupt one.
        """
        self.buffers.clear()
        self._prev = None

    # -- the per-frame entry point -------------------------------------------
    def process(self, frame: np.ndarray) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Execute one frame; returns ``(outputs, info)``.

        ``outputs`` is a fresh copy (the caller may hold it across frames);
        ``info`` records the execution mode (``full``/``incremental``/
        ``cached``), the dirty-tile counts and the dirty-area fraction.
        """
        frame = np.asarray(frame, dtype=np.float64)
        if frame.shape == (1,) + self.plan.input_shape:
            frame = frame[0]
        if frame.shape != self.plan.input_shape:
            raise ValueError(
                f"frame shape {frame.shape} does not match the program input "
                f"shape {self.plan.input_shape}"
            )
        self.frames += 1
        if self._prev is None:
            return self._full(frame, reason="first_frame")
        dirty_tiles, total_tiles, region = self._diff(frame)
        if dirty_tiles == 0:
            self.cached_frames += 1
            out = self.buffers[self.plan.program.output_id]
            return np.array(out[0], copy=True), {
                "mode": "cached",
                "dirty_tiles": 0,
                "total_tiles": total_tiles,
                "dirty_fraction": 0.0,
            }
        h, w = self.plan.input_shape[1:]
        y0, y1, x0, x1 = region
        fraction = ((y1 - y0) * (x1 - x0)) / float(h * w)
        if fraction >= self.plan.crossover:
            info_out = self._full(frame, reason="crossover")
            info_out[1].update(
                dirty_tiles=dirty_tiles,
                total_tiles=total_tiles,
                dirty_fraction=fraction,
            )
            return info_out
        self.incremental_frames += 1
        self.dirty_fraction_sum += fraction
        out = self._incremental(frame, region)
        return np.array(out[0], copy=True), {
            "mode": "incremental",
            "dirty_tiles": dirty_tiles,
            "total_tiles": total_tiles,
            "dirty_fraction": fraction,
        }

    # -- internals -----------------------------------------------------------
    def _full(self, frame: np.ndarray, reason: str):
        self.full_frames += 1
        out = self.plan.run_full(self.buffers, frame[None])
        self._prev = self.buffers[self.plan.program.input_id]
        return np.array(out[0], copy=True), {
            "mode": "full",
            "reason": reason,
            "dirty_tiles": None,
            "total_tiles": None,
            "dirty_fraction": 1.0,
        }

    def _diff(self, frame: np.ndarray) -> Tuple[int, int, Optional[Region]]:
        """Tile-granular change map vs. the reference frame → dirty bbox."""
        t = self.plan.tile
        prev = self._prev[0]
        c, h, w = prev.shape
        th, tw = -(-h // t), -(-w // t)
        dirty_rows: List[int] = []
        dirty_cols: List[int] = []
        count = 0
        for ty in range(th):
            ys = slice(ty * t, min((ty + 1) * t, h))
            for tx in range(tw):
                xs = slice(tx * t, min((tx + 1) * t, w))
                new, old = frame[:, ys, xs], prev[:, ys, xs]
                if self.threshold == 0.0:
                    changed = not np.array_equal(new, old)
                else:
                    changed = bool(np.max(np.abs(new - old)) > self.threshold)
                if changed:
                    count += 1
                    dirty_rows.append(ty)
                    dirty_cols.append(tx)
        if not count:
            return 0, th * tw, None
        y0 = min(dirty_rows) * t
        y1 = min(h, (max(dirty_rows) + 1) * t)
        x0 = min(dirty_cols) * t
        x1 = min(w, (max(dirty_cols) + 1) * t)
        return count, th * tw, (y0, y1, x0, x1)

    def _incremental(self, frame: np.ndarray, region: Region) -> np.ndarray:
        bufs = self.buffers
        plan = self.plan
        y0, y1, x0, x1 = region
        # The reference frame absorbs the dirty region: with threshold 0
        # nothing outside it differs, so the state is exactly the incoming
        # frame; with a lossy threshold, sub-threshold tiles keep their old
        # values (that is the memoization) and the reference tracks what was
        # actually executed.
        prev = self._prev
        prev[0, :, y0:y1, x0:x1] = frame[:, y0:y1, x0:x1]
        regions: Dict[int, Optional[Region]] = {plan.program.input_id: region}
        cut = False
        for bound in plan.steps:
            step, rule = bound.step, bound.rule
            in_regions = [regions.get(b) for b in step.inputs]
            if not cut and all(r is None for r in in_regions):
                regions[step.output] = None
                continue  # clean step: previous frame's output stands
            if cut or rule.kind == "cutoff" or bound.crop_fn is None:
                # Full-frame re-execution (cutoff head, float convs, or a
                # verification-demoted step).
                bufs[step.output] = step.fn(*[bufs[b] for b in step.inputs])
                if cut or rule.kind == "cutoff":
                    cut = True
                    regions[step.output] = None
                    continue
                out_hw = bufs[step.output].shape[2:]
                merged = _union(
                    [r for r in in_regions if r is not None],
                )
                regions[step.output] = rule.out_region(merged, out_hw)
                continue
            merged = _union([r for r in in_regions if r is not None])
            out = bufs[step.output]
            out_region = rule.out_region(merged, out.shape[2:])
            bound.crop_fn(bufs, out_region, step.inputs, step.output)
            regions[step.output] = out_region
        return bufs[plan.program.output_id]


def _union(regions: List[Region]) -> Region:
    y0 = min(r[0] for r in regions)
    y1 = max(r[1] for r in regions)
    x0 = min(r[2] for r in regions)
    x1 = max(r[3] for r in regions)
    return (y0, y1, x0, x1)


# ---------------------------------------------------------------------------
# Compilation: bind rules, verify bitwise, measure the crossover
# ---------------------------------------------------------------------------

def compile_stream_plan(
    program: NetworkProgram,
    tile: int = 8,
    crossover: Optional[float] = None,
    active_bits: Optional[int] = None,
    executor: Optional[Executor] = None,
    verify: bool = True,
    seed: int = 0,
) -> StreamPlan:
    """Compile the streaming machinery for a bound program.

    Derives per-step propagation rules from the plan backend's bound
    schedule, builds crop executors (padding-0 conv-plan clones for the
    fused bit-serial steps), **verifies** the incremental path bitwise
    against the full executor on a perturbed frame (demoting any deviating
    step to full-frame execution), and measures the incremental-vs-full
    crossover dirty fraction — recorded like autotune decisions under the
    executor's ``plan_info["stream"]`` and the program's pipeline report.

    ``crossover`` overrides the measurement with a fixed fraction
    (deterministic tests); ``executor`` reuses an existing plan-backend
    executor instead of binding a new one.
    """
    if not program.bound:
        raise StreamUnsupported("only bound programs (with a LUT) can stream")
    if len(program.input_shape) != 3:
        raise StreamUnsupported(
            f"streaming needs a spatial (C, H, W) input, got "
            f"{program.input_shape}"
        )
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    support = stream_support(program)
    if not support["supported"]:
        bad = [r["op"] for r in support["rules"] if r["rule"] == "unknown"]
        raise StreamUnsupported(
            f"program has ops without streaming rules: {bad}"
        )
    if executor is None:
        executor = Executor(program, backend="plan", active_bits=active_bits)
    bound_steps: List[_BoundStreamStep] = []
    for step in executor._steps:
        rule = _classify_step(step)
        crop_fn: Optional[Callable] = None
        if rule.mode == "crop":
            if step.op.kind == "bitserial_conv":
                crop_fn = _conv_crop_fn(step, rule, active_bits)
            elif step.op.kind == "conv":
                crop_fn = _float_conv_crop_fn(step, rule)
            elif step.op.kind == "pool":
                rule.align = 1  # output grid is already window-granular
                crop_fn = _pool_crop_fn(step)
            else:
                crop_fn = _elementwise_crop_fn(step)
        bound_steps.append(_BoundStreamStep(step=step, rule=rule, crop_fn=crop_fn))

    record: Dict[str, Any] = {
        "tile": int(tile),
        "steps": len(bound_steps),
        "crop_steps": sum(1 for b in bound_steps if b.crop_fn is not None),
        "cutoff_index": support["cutoff_index"],
        "demoted_steps": [],
    }
    plan = StreamPlan(
        program, executor, bound_steps, tile=tile, crossover=1.0, record=record
    )

    rng = np.random.default_rng(seed)
    base = rng.standard_normal((1,) + tuple(program.input_shape))
    if verify:
        _verify_bitwise(plan, base, rng, record)
    # The compile-time oracle runs above may have parked buffers in the
    # pooled executor's free list; drop them so concurrent sessions never
    # race the (unlocked) pool at runtime.
    executor.pool._free.clear()

    if crossover is not None:
        if not (0.0 < crossover <= 1.0):
            raise ValueError(f"crossover must be in (0, 1], got {crossover}")
        plan.crossover = float(crossover)
        record["crossover"] = {"fraction": plan.crossover, "source": "fixed"}
    else:
        record["crossover"] = _measure_crossover(plan, base, rng)
        plan.crossover = record["crossover"]["fraction"]

    record_stage_report(
        program,
        {
            "name": "stream_plan",
            "stage": "stream",
            "counters": {
                "tile": record["tile"],
                "steps": record["steps"],
                "crop_steps": record["crop_steps"],
                "demoted": len(record["demoted_steps"]),
            },
            "decisions": {"crossover": record["crossover"]},
        },
    )
    if executor.plan_info is not None:
        executor.plan_info["stream"] = plan.counters
    return plan


def _perturb(base: np.ndarray, region: Region, rng) -> np.ndarray:
    frame = np.array(base, copy=True)
    y0, y1, x0, x1 = region
    frame[0, :, y0:y1, x0:x1] += rng.standard_normal(
        frame[0, :, y0:y1, x0:x1].shape
    )
    return frame


def _verify_bitwise(plan: StreamPlan, base: np.ndarray, rng, record) -> None:
    """Prove the incremental path bitwise-equal on a perturbed frame.

    Runs a base frame full, perturbs a sub-region, executes it both ways
    (fresh full run vs. incremental from the base state) and compares every
    persistent buffer.  A deviating step is demoted to full-frame execution
    and the check repeats — by construction this converges (a schedule with
    every step demoted is exactly the full path).
    """
    h, w = plan.input_shape[1:]
    t = plan.tile
    # A border-touching, tile-unaligned region exercises halo padding.
    region = (0, min(h, max(1, t + t // 2)), 0, min(w, max(1, t + t // 2)))
    frame = _perturb(base, region, rng)
    # The full streaming refresh must match the executor end to end (pooled
    # and planned paths are bitwise identical by the repo's standing
    # contract; this assert keeps the streaming path honest about it).
    expected = plan.executor.run(frame)
    reference: Dict[int, np.ndarray] = {}
    plan.run_full(reference, frame)
    if not np.array_equal(reference[plan.program.output_id], expected):
        raise StreamUnsupported(
            "full streaming refresh deviates from the executor oracle"
        )  # pragma: no cover - pooled/planned bitwise identity is a repo invariant
    for _ in range(len(plan.steps) + 1):
        session = plan.session(threshold=0.0)
        session.process(base[0])
        session.process(frame[0])
        culprit = None
        for bound in plan.steps:
            out = bound.step.output
            if not np.array_equal(session.buffers[out], reference[out]):
                culprit = bound
                break
        if culprit is None:
            return
        culprit.crop_fn = None
        culprit.rule.demoted = True
        record["demoted_steps"].append(
            culprit.step.op.name or culprit.step.op.kind
        )
    raise StreamUnsupported(
        "incremental execution failed bitwise verification even with every "
        "step demoted to full-frame execution"
    )  # pragma: no cover - demoting all steps reproduces the full path


def _measure_crossover(plan: StreamPlan, base: np.ndarray, rng) -> Dict[str, Any]:
    """Time full refresh vs. incremental at low/high dirty fractions.

    Models incremental cost as linear in the dirty-area fraction (it is:
    every crop scales with the dilated bounding box) and solves for the
    fraction where it meets the full-refresh cost.  Clamped to [0.05, 0.95]
    so a full-frame change always takes the full path and a tiny change
    always goes incremental.
    """
    h, w = plan.input_shape[1:]
    t = plan.tile
    lo_region = (0, min(h, t), 0, min(w, t))
    hi_region = (0, h, 0, w)

    def time_increment(region: Region, reps: int = 3) -> float:
        best = float("inf")
        for _ in range(reps):
            session = plan.session(threshold=0.0)
            session.process(base[0])
            frame = _perturb(base, region, rng)
            start = time.perf_counter()
            session._incremental(frame[0], region)
            best = min(best, time.perf_counter() - start)
        return best

    def time_full(reps: int = 3) -> float:
        session = plan.session(threshold=0.0)
        session.process(base[0])
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            plan.run_full(session.buffers, base)
            best = min(best, time.perf_counter() - start)
        return best

    t_full = time_full()
    t_lo = time_increment(lo_region)
    t_hi = time_increment(hi_region)
    f_lo = (t * t) / float(h * w)
    if t_hi <= t_lo:  # degenerate timing; incremental cost looks flat
        fraction = 1.0 if t_hi <= t_full else f_lo
    else:
        fraction = f_lo + (t_full - t_lo) * (1.0 - f_lo) / (t_hi - t_lo)
    fraction = float(np.clip(fraction, 0.05, 0.95))
    return {
        "fraction": fraction,
        "source": "measured",
        "t_full_ms": t_full * 1e3,
        "t_incremental_lo_ms": t_lo * 1e3,
        "t_incremental_hi_ms": t_hi * 1e3,
    }
