"""Bit-serial LUT execution of weight-pool layers (functional, exact simulation).

These functions compute convolutions and matrix products exactly the way the
paper's microcontroller kernel does (Algorithm 1): activations are quantized
to unsigned integers, decomposed bit-by-bit, and every 8-element partial dot
product is obtained by *looking up* the dot product of a 1-bit activation
vector with a pool vector, then shift-accumulated over bit positions (Eq. 1–2,
Figure 5).

With a full-precision LUT the result is bit-exact with an ordinary convolution
using the reconstructed pool weights on the integer activations — the central
correctness invariant of the implementation (verified by property tests).
With a quantized LUT, every table entry carries its quantization error, which
is what Table 5 measures.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.lut import LookupTable
from repro.nn.functional import conv_output_size, im2col


# ---------------------------------------------------------------------------
# Bit decomposition
# ---------------------------------------------------------------------------
def bit_decompose(values: np.ndarray, bitwidth: int) -> np.ndarray:
    """Decompose unsigned integers into bits along a new trailing axis (LSB first).

    Mirrors Eq. 2: ``a = sum_j 2^j a[j]``.  Output shape is
    ``values.shape + (bitwidth,)`` with entries in {0, 1}.
    """
    values = np.asarray(values, dtype=np.int64)
    if bitwidth < 1:
        raise ValueError(f"bitwidth must be >= 1, got {bitwidth}")
    if values.size and values.min() < 0:
        raise ValueError("bit_decompose expects non-negative (unsigned) integers")
    if values.size and values.max() >= (1 << bitwidth):
        raise ValueError(
            f"activation value {int(values.max())} does not fit in {bitwidth} bits"
        )
    return ((values[..., None] >> np.arange(bitwidth)) & 1).astype(np.int64)


def bit_vector_values(groups: np.ndarray, bitwidth: int) -> np.ndarray:
    """Encode each group of activations into per-bit-position LUT addresses.

    ``groups`` has shape ``(..., g)`` of unsigned integers.  The result has
    shape ``(..., bitwidth)``; entry ``[..., j]`` is the integer whose bit ``i``
    is bit ``j`` of activation ``i`` in the group — i.e. the address of the
    1-bit activation vector for bit position ``j`` (a row of the decomposed
    matrix in Figure 5b).
    """
    groups = np.asarray(groups, dtype=np.int64)
    if groups.size and groups.min() < 0:
        raise ValueError("bit_vector_values expects non-negative (unsigned) integers")
    if groups.size and groups.max() >= (1 << bitwidth):
        raise ValueError(
            f"activation value {int(groups.max())} does not fit in {bitwidth} bits"
        )
    g = groups.shape[-1]
    position_weights = (1 << np.arange(g)).astype(np.int64)  # position within the group
    out = np.empty(groups.shape[:-1] + (bitwidth,), dtype=np.int64)
    # One pass per bit position keeps the peak memory at the size of the output
    # rather than materialising the full (..., g, bitwidth) bit tensor.
    for j in range(bitwidth):
        out[..., j] = (((groups >> j) & 1) * position_weights).sum(axis=-1)
    return out


# ---------------------------------------------------------------------------
# Single dot product (reference-style, used in tests and small kernels)
# ---------------------------------------------------------------------------
def bitserial_dot(
    q_activations: np.ndarray,
    pool_index: int,
    lut: LookupTable,
    act_bitwidth: int,
    active_bits: Optional[int] = None,
) -> float:
    """Bit-serial dot product of one activation group with one pool vector.

    ``active_bits`` truncates execution after the most significant
    ``active_bits`` bit positions — the paper's runtime/accuracy knob
    ("reducing activation bitwidth now just amounts to truncating the temporal
    bit-serial execution earlier").
    """
    q_activations = np.asarray(q_activations, dtype=np.int64)
    if q_activations.ndim != 1 or q_activations.shape[0] != lut.group_size:
        raise ValueError(
            f"expected a length-{lut.group_size} activation group, got {q_activations.shape}"
        )
    addresses = bit_vector_values(q_activations[None, :], act_bitwidth)[0]
    active = act_bitwidth if active_bits is None else active_bits
    if not 1 <= active <= act_bitwidth:
        raise ValueError(f"active_bits must be in [1, {act_bitwidth}], got {active}")
    total = 0.0
    # MSB first, truncating the least significant bits when active < bitwidth.
    for j in range(act_bitwidth - 1, act_bitwidth - 1 - active, -1):
        total += float(lut.lookup(addresses[j], pool_index)) * (1 << j)
    return total


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------
def _grouped_addresses(
    q_x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    group_size: int,
    act_bitwidth: int,
    pad_value: int,
) -> np.ndarray:
    """im2col + channel grouping + bit decomposition.

    Returns LUT addresses of shape ``(N, C/g, KH, KW, P, M)`` where ``P`` is the
    number of output positions and ``M`` the activation bitwidth.
    """
    n, c, h, w = q_x.shape
    kh, kw = kernel
    if c % group_size:
        raise ValueError(
            f"channel count {c} must be a multiple of the group size {group_size} "
            "(pad activation channels with the zero-point first)"
        )
    if padding:
        q_x = np.pad(
            q_x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=pad_value,
        )
    cols = im2col(q_x, kernel, stride, padding=0)  # (N, C*KH*KW, P)
    p = cols.shape[-1]
    cols = cols.reshape(n, c, kh, kw, p)
    groups = c // group_size
    cols = cols.reshape(n, groups, group_size, kh, kw, p)
    # Move the group dimension last for bit_vector_values.
    cols = cols.transpose(0, 1, 3, 4, 5, 2)  # (N, groups, KH, KW, P, g)
    return bit_vector_values(cols, act_bitwidth)  # (N, groups, KH, KW, P, M)


def bitserial_conv2d(
    q_x: np.ndarray,
    indices: np.ndarray,
    lut: LookupTable,
    stride: int = 1,
    padding: int = 0,
    act_bitwidth: int = 8,
    active_bits: Optional[int] = None,
    pad_value: int = 0,
) -> np.ndarray:
    """Bit-serial LUT convolution over unsigned integer activations.

    Parameters
    ----------
    q_x:
        ``(N, C, H, W)`` unsigned integer activations (quantized levels).
    indices:
        ``(F, C/g, KH, KW)`` pool indices of the weight-pool layer.
    lut:
        Shared lookup table (full precision or quantized).
    act_bitwidth:
        Bitwidth of the quantized activations (number of bit-serial iterations).
    active_bits:
        If given, only the most significant ``active_bits`` positions are
        processed (early termination).
    pad_value:
        Value used for spatial zero padding — pass the activation zero point so
        padded positions contribute zero in the dequantized domain.

    Returns
    -------
    ``(N, F, OH, OW)`` array containing ``sum_taps q * w`` in the
    "integer activation × real pool weight" domain.  The caller applies the
    activation scale / zero-point correction and bias.
    """
    q_x = np.asarray(q_x, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if q_x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) activations, got {q_x.shape}")
    if indices.ndim != 4:
        raise ValueError(f"expected (F, C/g, KH, KW) indices, got {indices.shape}")
    f, groups, kh, kw = indices.shape
    n, c, h, w = q_x.shape
    if groups * lut.group_size != c:
        raise ValueError(
            f"indices expect {groups * lut.group_size} channels, activations have {c}"
        )
    active = act_bitwidth if active_bits is None else active_bits
    if not 1 <= active <= act_bitwidth:
        raise ValueError(f"active_bits must be in [1, {act_bitwidth}], got {active}")

    addresses = _grouped_addresses(
        q_x, (kh, kw), stride, padding, lut.group_size, act_bitwidth, pad_value
    )  # (N, groups, KH, KW, P, M)
    p = addresses.shape[4]
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)

    # Bit positions processed, most significant first.
    bit_positions = list(range(act_bitwidth - 1, act_bitwidth - 1 - active, -1))
    bit_weights = [float(1 << j) for j in bit_positions]

    out = np.zeros((n, p, f), dtype=np.float64)
    table = lut.values  # (2^g, S)
    pool_size = table.shape[1]
    # Loop over group positions (channel group × kernel offset); every inner
    # operation is a vectorised gather/accumulate over batch and position.
    # Mirroring the MCU kernel's own optimisation (§4.3), the per-pool-vector
    # partials are only materialised when the layer has more filters than pool
    # entries; otherwise the lookups go directly through the filter indices.
    for cg in range(groups):
        for i in range(kh):
            for j in range(kw):
                addr = addresses[:, cg, i, j]  # (N, P, M), LSB-first bit axis
                filter_indices = indices[:, cg, i, j]  # (F,)
                if f <= pool_size:
                    # Direct lookups: gather only the columns this layer uses.
                    sub_table = table[:, filter_indices]  # (2^g, F)
                    partial = np.zeros((n, p, f), dtype=np.float64)
                    for bit, weight in zip(bit_positions, bit_weights):
                        partial += weight * sub_table[addr[..., bit]]
                    out += partial
                else:
                    # Precomputation: partials for every pool vector, then gather.
                    partial = np.zeros((n, p, pool_size), dtype=np.float64)
                    for bit, weight in zip(bit_positions, bit_weights):
                        partial += weight * table[addr[..., bit]]
                    out += partial[:, :, filter_indices]

    return out.transpose(0, 2, 1).reshape(n, f, oh, ow)


def bitserial_linear(
    q_x: np.ndarray,
    indices: np.ndarray,
    lut: LookupTable,
    act_bitwidth: int = 8,
    active_bits: Optional[int] = None,
) -> np.ndarray:
    """Bit-serial LUT matrix product for fully-connected weight-pool layers.

    ``q_x`` is ``(N, in_features)`` unsigned integers; ``indices`` is
    ``(out_features, in_features / g)``.  Returns ``sum q * w`` of shape
    ``(N, out_features)``.
    """
    q_x = np.asarray(q_x, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if q_x.ndim != 2 or indices.ndim != 2:
        raise ValueError("bitserial_linear expects 2D activations and 2D indices")
    n, in_features = q_x.shape
    out_features, groups = indices.shape
    if groups * lut.group_size != in_features:
        raise ValueError(
            f"indices expect {groups * lut.group_size} inputs, activations have {in_features}"
        )
    active = act_bitwidth if active_bits is None else active_bits
    if not 1 <= active <= act_bitwidth:
        raise ValueError(f"active_bits must be in [1, {act_bitwidth}], got {active}")

    grouped = q_x.reshape(n, groups, lut.group_size)
    addresses = bit_vector_values(grouped, act_bitwidth)  # (N, groups, M)
    bit_positions = list(range(act_bitwidth - 1, act_bitwidth - 1 - active, -1))
    bit_weights = [float(1 << j) for j in bit_positions]

    out = np.zeros((n, out_features), dtype=np.float64)
    table = lut.values
    for cg in range(groups):
        addr = addresses[:, cg]  # (N, M), LSB-first bit axis
        partial = np.zeros((n, table.shape[1]), dtype=np.float64)
        for bit, weight in zip(bit_positions, bit_weights):
            partial += weight * table[addr[:, bit]]
        out += partial[:, indices[:, cg]]
    return out
