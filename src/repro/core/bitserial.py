"""Bit-serial LUT execution of weight-pool layers (functional, exact simulation).

These functions compute convolutions and matrix products exactly the way the
paper's microcontroller kernel does (Algorithm 1): activations are quantized
to unsigned integers, decomposed bit-by-bit, and every 8-element partial dot
product is obtained by *looking up* the dot product of a 1-bit activation
vector with a pool vector, then shift-accumulated over bit positions (Eq. 1–2,
Figure 5).

With a full-precision LUT the result is bit-exact with an ordinary convolution
using the reconstructed pool weights on the integer activations — the central
correctness invariant of the implementation (verified by property tests).
With a quantized LUT, every table entry carries its quantization error, which
is what Table 5 measures.

Two execution strategies coexist:

* ``bitserial_conv2d`` / ``bitserial_linear`` — the public kernels.  They
  compile a per-call :mod:`repro.core.kernel_plan` and execute it with the
  vectorised gather-accumulate engine (the fast path).
* ``bitserial_conv2d_reference`` / ``bitserial_linear_reference`` — the
  original Python tap-loop kernels, kept as the independent oracle for the
  property tests and as the "legacy" side of the throughput benchmark.

Long-lived callers (the inference engine) should compile a plan once via
:func:`repro.core.kernel_plan.compile_conv_plan` and reuse it across batches
instead of going through the per-call wrappers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.lut import LookupTable
from repro.nn.functional import conv_output_size, im2col_patches
from repro.utils.bits import min_uint_dtype


# ---------------------------------------------------------------------------
# Bit decomposition
# ---------------------------------------------------------------------------
def _validate_unsigned(values: np.ndarray, bitwidth: int, caller: str) -> None:
    """Range-check unsigned integers once, up front (not per bit-position pass)."""
    if bitwidth < 1:
        raise ValueError(f"bitwidth must be >= 1, got {bitwidth}")
    if values.size:
        low = int(values.min())
        if low < 0:
            raise ValueError(f"{caller} expects non-negative (unsigned) integers")
        high = int(values.max())
        if high >= (1 << bitwidth):
            raise ValueError(
                f"activation value {high} does not fit in {bitwidth} bits"
            )


def bit_decompose(values: np.ndarray, bitwidth: int) -> np.ndarray:
    """Decompose unsigned integers into bits along a new trailing axis (LSB first).

    Mirrors Eq. 2: ``a = sum_j 2^j a[j]``.  Output shape is
    ``values.shape + (bitwidth,)`` with entries in {0, 1}.
    """
    values = np.asarray(values, dtype=np.int64)
    _validate_unsigned(values, bitwidth, "bit_decompose")
    return ((values[..., None] >> np.arange(bitwidth)) & 1).astype(np.int64)


def bit_vector_values(groups: np.ndarray, bitwidth: int) -> np.ndarray:
    """Encode each group of activations into per-bit-position LUT addresses.

    ``groups`` has shape ``(..., g)`` of unsigned integers.  The result has
    shape ``(..., bitwidth)``; entry ``[..., j]`` is the integer whose bit ``i``
    is bit ``j`` of activation ``i`` in the group — i.e. the address of the
    1-bit activation vector for bit position ``j`` (a row of the decomposed
    matrix in Figure 5b).

    Addresses are always below ``2^g``, so the result uses the smallest
    sufficient unsigned dtype (``uint8`` for the paper's g=8) rather than
    int64; inputs are validated exactly once before the per-bit passes.
    """
    groups = np.asarray(groups, dtype=np.int64)
    _validate_unsigned(groups, bitwidth, "bit_vector_values")
    g = groups.shape[-1]
    out = np.empty(
        groups.shape[:-1] + (bitwidth,), dtype=min_uint_dtype(max((1 << g) - 1, 0))
    )
    position_weights = (1 << np.arange(g)).astype(np.int64)  # position within the group
    # One pass per bit position keeps the peak memory at the size of the output
    # rather than materialising the full (..., g, bitwidth) bit tensor.
    for j in range(bitwidth):
        out[..., j] = (((groups >> j) & 1) * position_weights).sum(axis=-1)
    return out


def active_bit_positions(act_bitwidth: int, active_bits: Optional[int]) -> list:
    """Bit positions processed by the kernels, most significant first.

    ``active_bits`` truncates execution after the most significant positions
    (the paper's early-termination runtime/accuracy knob); ``None`` processes
    every position.
    """
    active = act_bitwidth if active_bits is None else active_bits
    if not 1 <= active <= act_bitwidth:
        raise ValueError(f"active_bits must be in [1, {act_bitwidth}], got {active}")
    return list(range(act_bitwidth - 1, act_bitwidth - 1 - active, -1))


# ---------------------------------------------------------------------------
# Single dot product (reference-style, used in tests and small kernels)
# ---------------------------------------------------------------------------
def bitserial_dot(
    q_activations: np.ndarray,
    pool_index: int,
    lut: LookupTable,
    act_bitwidth: int,
    active_bits: Optional[int] = None,
) -> float:
    """Bit-serial dot product of one activation group with one pool vector.

    ``active_bits`` truncates execution after the most significant
    ``active_bits`` bit positions — the paper's runtime/accuracy knob
    ("reducing activation bitwidth now just amounts to truncating the temporal
    bit-serial execution earlier").
    """
    q_activations = np.asarray(q_activations, dtype=np.int64)
    if q_activations.ndim != 1 or q_activations.shape[0] != lut.group_size:
        raise ValueError(
            f"expected a length-{lut.group_size} activation group, got {q_activations.shape}"
        )
    addresses = bit_vector_values(q_activations[None, :], act_bitwidth)[0]
    total = 0.0
    # MSB first, truncating the least significant bits when active < bitwidth.
    for j in active_bit_positions(act_bitwidth, active_bits):
        total += float(lut.lookup(int(addresses[j]), pool_index)) * (1 << j)
    return total


# ---------------------------------------------------------------------------
# Reference convolution (original Python tap-loop kernel)
# ---------------------------------------------------------------------------
def _grouped_addresses(
    q_x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    group_size: int,
    act_bitwidth: int,
    pad_value: int,
) -> np.ndarray:
    """im2col + channel grouping + bit decomposition.

    Returns LUT addresses of shape ``(N, C/g, KH, KW, P, M)`` where ``P`` is the
    number of output positions and ``M`` the activation bitwidth.  The patch
    tensor is materialised exactly once, in the grouped layout, from the
    zero-copy :func:`~repro.nn.functional.im2col_patches` view.
    """
    n, c, h, w = q_x.shape
    kh, kw = kernel
    if c % group_size:
        raise ValueError(
            f"channel count {c} must be a multiple of the group size {group_size} "
            "(pad activation channels with the zero-point first)"
        )
    if padding:
        q_x = np.pad(
            q_x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=pad_value,
        )
    patches = im2col_patches(q_x, kernel, stride, padding=0)  # (N, C, KH, KW, OH, OW) view
    oh, ow = patches.shape[4], patches.shape[5]
    groups = c // group_size
    # Split the channel axis into (groups, g) on the strided view, move the
    # group-element axis last, and materialise with a single copy.
    sn, sc, skh, skw, soh, sow = patches.strides
    grouped = np.lib.stride_tricks.as_strided(
        patches,
        shape=(n, groups, group_size, kh, kw, oh, ow),
        strides=(sn, sc * group_size, sc, skh, skw, soh, sow),
        writeable=False,
    )
    cols = np.ascontiguousarray(grouped.transpose(0, 1, 3, 4, 5, 6, 2)).reshape(
        n, groups, kh, kw, oh * ow, group_size
    )  # (N, groups, KH, KW, P, g)
    return bit_vector_values(cols, act_bitwidth)  # (N, groups, KH, KW, P, M)


def bitserial_conv2d_reference(
    q_x: np.ndarray,
    indices: np.ndarray,
    lut: LookupTable,
    stride: int = 1,
    padding: int = 0,
    act_bitwidth: int = 8,
    active_bits: Optional[int] = None,
    pad_value: int = 0,
) -> np.ndarray:
    """Original tap-loop bit-serial convolution (the legacy kernel).

    Semantically identical to :func:`bitserial_conv2d` but loops in Python
    over every channel-group × kernel-tap.  Kept as the independent oracle for
    the plan-based kernels and as the baseline of the throughput benchmark.
    """
    q_x = np.asarray(q_x, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if q_x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) activations, got {q_x.shape}")
    if indices.ndim != 4:
        raise ValueError(f"expected (F, C/g, KH, KW) indices, got {indices.shape}")
    f, groups, kh, kw = indices.shape
    n, c, h, w = q_x.shape
    if groups * lut.group_size != c:
        raise ValueError(
            f"indices expect {groups * lut.group_size} channels, activations have {c}"
        )
    bit_positions = active_bit_positions(act_bitwidth, active_bits)
    bit_weights = [float(1 << j) for j in bit_positions]

    addresses = _grouped_addresses(
        q_x, (kh, kw), stride, padding, lut.group_size, act_bitwidth, pad_value
    )  # (N, groups, KH, KW, P, M)
    p = addresses.shape[4]
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)

    out = np.zeros((n, p, f), dtype=np.float64)
    table = lut.values  # (2^g, S)
    pool_size = table.shape[1]
    # Loop over group positions (channel group × kernel offset); every inner
    # operation is a vectorised gather/accumulate over batch and position.
    # Mirroring the MCU kernel's own optimisation (§4.3), the per-pool-vector
    # partials are only materialised when the layer has more filters than pool
    # entries; otherwise the lookups go directly through the filter indices.
    for cg in range(groups):
        for i in range(kh):
            for j in range(kw):
                addr = addresses[:, cg, i, j]  # (N, P, M), LSB-first bit axis
                filter_indices = indices[:, cg, i, j]  # (F,)
                if f <= pool_size:
                    # Direct lookups: gather only the columns this layer uses.
                    sub_table = table[:, filter_indices]  # (2^g, F)
                    partial = np.zeros((n, p, f), dtype=np.float64)
                    for bit, weight in zip(bit_positions, bit_weights):
                        partial += weight * sub_table[addr[..., bit]]
                    out += partial
                else:
                    # Precomputation: partials for every pool vector, then gather.
                    partial = np.zeros((n, p, pool_size), dtype=np.float64)
                    for bit, weight in zip(bit_positions, bit_weights):
                        partial += weight * table[addr[..., bit]]
                    out += partial[:, :, filter_indices]

    return out.transpose(0, 2, 1).reshape(n, f, oh, ow)


def bitserial_linear_reference(
    q_x: np.ndarray,
    indices: np.ndarray,
    lut: LookupTable,
    act_bitwidth: int = 8,
    active_bits: Optional[int] = None,
) -> np.ndarray:
    """Original group-loop bit-serial matrix product (the legacy kernel)."""
    q_x = np.asarray(q_x, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if q_x.ndim != 2 or indices.ndim != 2:
        raise ValueError("bitserial_linear expects 2D activations and 2D indices")
    n, in_features = q_x.shape
    out_features, groups = indices.shape
    if groups * lut.group_size != in_features:
        raise ValueError(
            f"indices expect {groups * lut.group_size} inputs, activations have {in_features}"
        )
    bit_positions = active_bit_positions(act_bitwidth, active_bits)
    bit_weights = [float(1 << j) for j in bit_positions]

    grouped = q_x.reshape(n, groups, lut.group_size)
    addresses = bit_vector_values(grouped, act_bitwidth)  # (N, groups, M)

    out = np.zeros((n, out_features), dtype=np.float64)
    table = lut.values
    for cg in range(groups):
        addr = addresses[:, cg]  # (N, M), LSB-first bit axis
        partial = np.zeros((n, table.shape[1]), dtype=np.float64)
        for bit, weight in zip(bit_positions, bit_weights):
            partial += weight * table[addr[:, bit]]
        out += partial[:, indices[:, cg]]
    return out


# ---------------------------------------------------------------------------
# Public kernels (plan-backed)
# ---------------------------------------------------------------------------
def bitserial_conv2d(
    q_x: np.ndarray,
    indices: np.ndarray,
    lut: LookupTable,
    stride: int = 1,
    padding: int = 0,
    act_bitwidth: int = 8,
    active_bits: Optional[int] = None,
    pad_value: int = 0,
) -> np.ndarray:
    """Bit-serial LUT convolution over unsigned integer activations.

    Compiles a single-use :class:`~repro.core.kernel_plan.ConvKernelPlan` and
    executes it.  Long-lived callers should compile the plan once themselves
    and reuse it across batches (the inference engine does).

    Parameters
    ----------
    q_x:
        ``(N, C, H, W)`` unsigned integer activations (quantized levels).
    indices:
        ``(F, C/g, KH, KW)`` pool indices of the weight-pool layer.
    lut:
        Shared lookup table (full precision or quantized).
    act_bitwidth:
        Bitwidth of the quantized activations (number of bit-serial iterations).
    active_bits:
        If given, only the most significant ``active_bits`` positions are
        processed (early termination).
    pad_value:
        Value used for spatial zero padding — pass the activation zero point so
        padded positions contribute zero in the dequantized domain.

    Returns
    -------
    ``(N, F, OH, OW)`` array containing ``sum_taps q * w`` in the
    "integer activation × real pool weight" domain.  The caller applies the
    activation scale / zero-point correction and bias.
    """
    from repro.core.kernel_plan import compile_conv_plan

    plan = compile_conv_plan(
        indices,
        lut,
        stride=stride,
        padding=padding,
        act_bitwidth=act_bitwidth,
        pad_value=pad_value,
    )
    return plan(q_x, active_bits=active_bits)


def bitserial_linear(
    q_x: np.ndarray,
    indices: np.ndarray,
    lut: LookupTable,
    act_bitwidth: int = 8,
    active_bits: Optional[int] = None,
) -> np.ndarray:
    """Bit-serial LUT matrix product for fully-connected weight-pool layers.

    ``q_x`` is ``(N, in_features)`` unsigned integers; ``indices`` is
    ``(out_features, in_features / g)``.  Returns ``sum q * w`` of shape
    ``(N, out_features)``.  Plan-backed; see :func:`bitserial_conv2d`.
    """
    from repro.core.kernel_plan import compile_linear_plan

    plan = compile_linear_plan(indices, lut, act_bitwidth=act_bitwidth)
    return plan(q_x, active_bits=active_bits)
