"""Weight-pool layers: convolutions/linears whose weights live in a shared pool.

A :class:`WeightPoolConv2d` keeps a *latent* full-precision weight tensor (the
paper's fine-tuning state) plus an index tensor into the shared
:class:`~repro.core.weight_pool.WeightPool`.  The forward pass always uses the
*effective* weight reconstructed from the pool; during fine-tuning the forward
pass first re-assigns indices to the nearest pool vectors and the backward
pass updates the latent weights (straight-through), exactly the training
pipeline of Figure 2.

An optional ``runtime`` object can be installed by the bit-serial inference
engine; when present, it takes over the forward computation (quantized
activations + LUT lookups) while compression bookkeeping stays in this class.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.grouping import (
    extract_linear_z_vectors,
    extract_z_vectors,
    pad_channels_to_group,
    reconstruct_from_z_indices,
    reconstruct_linear_from_z_indices,
)
from repro.core.weight_pool import WeightPool
from repro.nn import Conv2d, Linear
from repro.nn import functional as F


class WeightPoolConv2d(Conv2d):
    """Convolution whose weight vectors are drawn from a shared weight pool."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        pool: WeightPool,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        pad_channels: bool = False,
        rng=None,
    ):
        super().__init__(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=bias,
            rng=rng,
        )
        if groups != 1:
            raise ValueError(
                "weight-pool compression of grouped convolutions is not supported "
                "(the paper keeps depthwise layers uncompressed)"
            )
        channels = in_channels
        if channels % pool.group_size and not pad_channels:
            raise ValueError(
                f"in_channels {channels} not divisible by pool group size "
                f"{pool.group_size}; enable pad_channels or keep the layer uncompressed"
            )
        self.pool = pool
        self.pad_channels = pad_channels
        self.reassign_on_forward = True
        self.runtime = None  # installed by BitSerialInferenceEngine
        self.indices: Optional[np.ndarray] = None
        self.reassign()

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_conv(
        cls, conv: Conv2d, pool: WeightPool, pad_channels: bool = False
    ) -> "WeightPoolConv2d":
        """Wrap an existing convolution, preserving its (latent) weights and bias."""
        layer = cls(
            conv.in_channels,
            conv.out_channels,
            conv.kernel_size,
            pool,
            stride=conv.stride,
            padding=conv.padding,
            groups=conv.groups,
            bias=conv.bias is not None,
            pad_channels=pad_channels,
        )
        layer.weight.copy_(conv.weight.data)
        if conv.bias is not None:
            layer.bias.copy_(conv.bias.data)
        layer.reassign()
        return layer

    # -- pool bookkeeping ------------------------------------------------------
    def _padded_latent_weight(self) -> np.ndarray:
        weight = self.weight.data
        if self.pad_channels:
            weight = pad_channels_to_group(weight, self.pool.group_size)
        return weight

    def reassign(self) -> np.ndarray:
        """Re-assign every z-group of the latent weight to its nearest pool vector."""
        weight = self._padded_latent_weight()
        vectors = extract_z_vectors(weight, self.pool.group_size)
        flat = self.pool.assign(vectors)
        f, c, kh, kw = weight.shape
        groups = c // self.pool.group_size
        # extract_z_vectors lays vectors out as (F, groups, KH, KW).
        self.indices = flat.reshape(f, groups, kh, kw)
        return self.indices

    def effective_weight(self) -> np.ndarray:
        """The weight tensor actually used at inference (reconstructed from the pool)."""
        if self.indices is None:
            raise RuntimeError("indices not assigned; call reassign() first")
        return reconstruct_from_z_indices(
            self.indices, self.pool.vectors, num_channels=self.in_channels
        )

    def num_index_entries(self) -> int:
        """Number of stored pool indices for this layer."""
        return int(np.prod(self.indices.shape))

    # -- forward/backward -------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        self.last_input_shape = x.shape
        if self.training and self.reassign_on_forward:
            self.reassign()
        if self.runtime is not None:
            return self.runtime.run(self, x)
        weight = self.effective_weight()
        bias = self.bias.data if self.bias is not None else None
        out, cols = F.conv2d_forward(x, weight, bias, self.stride, self.padding, 1)
        self._cache = (x.shape, cols, weight)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.runtime is not None:
            raise RuntimeError(
                "backward() is not available while a bit-serial runtime is installed"
            )
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x_shape, cols, weight = self._cache
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_output,
            cols,
            x_shape,
            weight,
            self.stride,
            self.padding,
            1,
            has_bias=self.bias is not None,
        )
        # Straight-through: the gradient with respect to the effective weight is
        # applied to the latent weight, which the next forward pass re-assigns.
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"WeightPoolConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"pool_size={self.pool.size}, group_size={self.pool.group_size})"
        )


class WeightPoolLinear(Linear):
    """Fully-connected layer whose weight vectors are drawn from the shared pool.

    The paper keeps FC layers uncompressed by default (footnote 1) but
    evaluates compressing them; this layer provides that option.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        pool: WeightPool,
        bias: bool = True,
        rng=None,
    ):
        super().__init__(in_features, out_features, bias=bias, rng=rng)
        if in_features % pool.group_size:
            raise ValueError(
                f"in_features {in_features} not divisible by pool group size {pool.group_size}"
            )
        self.pool = pool
        self.reassign_on_forward = True
        self.runtime = None
        self.indices: Optional[np.ndarray] = None
        self.reassign()

    @classmethod
    def from_linear(cls, linear: Linear, pool: WeightPool) -> "WeightPoolLinear":
        layer = cls(
            linear.in_features,
            linear.out_features,
            pool,
            bias=linear.bias is not None,
        )
        layer.weight.copy_(linear.weight.data)
        if linear.bias is not None:
            layer.bias.copy_(linear.bias.data)
        layer.reassign()
        return layer

    def reassign(self) -> np.ndarray:
        vectors = extract_linear_z_vectors(self.weight.data, self.pool.group_size)
        flat = self.pool.assign(vectors)
        groups = self.in_features // self.pool.group_size
        self.indices = flat.reshape(self.out_features, groups)
        return self.indices

    def effective_weight(self) -> np.ndarray:
        if self.indices is None:
            raise RuntimeError("indices not assigned; call reassign() first")
        return reconstruct_linear_from_z_indices(self.indices, self.pool.vectors)

    def num_index_entries(self) -> int:
        return int(np.prod(self.indices.shape))

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.last_input_shape = x.shape
        if self.training and self.reassign_on_forward:
            self.reassign()
        if self.runtime is not None:
            return self.runtime.run(self, x)
        weight = self.effective_weight()
        self._cache = (x, weight)
        out = x @ weight.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.runtime is not None:
            raise RuntimeError(
                "backward() is not available while a bit-serial runtime is installed"
            )
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x, weight = self._cache
        self.weight.accumulate_grad(grad_output.T @ x)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return grad_output @ weight

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"WeightPoolLinear({self.in_features}, {self.out_features}, "
            f"pool_size={self.pool.size}, group_size={self.pool.group_size})"
        )
