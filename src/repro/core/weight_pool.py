"""The shared weight pool: construction, assignment, persistence."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.clustering import kmeans
from repro.core.grouping import extract_linear_z_vectors, extract_z_vectors, pad_channels_to_group
from repro.core.policy import CompressionPolicy
from repro.core.tracing import LayerTrace, trace_model
from repro.nn import Module
from repro.utils.bits import required_bits
from repro.utils.rng import SeedLike, new_rng


@dataclass
class WeightPool:
    """A pool of ``size`` weight vectors of length ``group_size`` shared network-wide."""

    vectors: np.ndarray
    metric: str = "cosine"

    def __post_init__(self) -> None:
        self.vectors = np.asarray(self.vectors, dtype=np.float64)
        if self.vectors.ndim != 2:
            raise ValueError(f"pool vectors must be 2D (S, g), got {self.vectors.shape}")

    # -- basic properties ----------------------------------------------------
    @property
    def size(self) -> int:
        """Number of vectors in the pool (the paper's ``S``)."""
        return int(self.vectors.shape[0])

    @property
    def group_size(self) -> int:
        """Vector length (the paper's ``N``, default 8)."""
        return int(self.vectors.shape[1])

    @property
    def index_bitwidth(self) -> int:
        """Minimum bits needed per stored index (``log2 S`` in Eq. 4)."""
        return required_bits(self.size)

    def storage_bits(self, value_bitwidth: int = 8) -> int:
        """Bits required to store the raw pool vectors themselves."""
        return self.size * self.group_size * value_bitwidth

    # -- assignment -----------------------------------------------------------
    def assign(self, vectors: np.ndarray) -> np.ndarray:
        """Assign each row of ``vectors`` to its nearest pool entry."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.group_size:
            raise ValueError(
                f"expected (N, {self.group_size}) vectors, got {vectors.shape}"
            )
        if self.metric == "cosine":
            pool_norm = self.vectors / np.maximum(
                np.linalg.norm(self.vectors, axis=1, keepdims=True), 1e-12
            )
            vec_norm = vectors / np.maximum(
                np.linalg.norm(vectors, axis=1, keepdims=True), 1e-12
            )
            similarity = vec_norm @ pool_norm.T
            return similarity.argmax(axis=1)
        distances = (
            (vectors**2).sum(axis=1, keepdims=True)
            + (self.vectors**2).sum(axis=1)
            - 2.0 * vectors @ self.vectors.T
        )
        return distances.argmin(axis=1)

    def reconstruct(self, indices: np.ndarray) -> np.ndarray:
        """Gather pool vectors for an arbitrary-shaped index array."""
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise ValueError("pool index out of range")
        return self.vectors[indices]

    def quantization_error(self, vectors: np.ndarray) -> float:
        """Mean squared reconstruction error of assigning ``vectors`` to the pool."""
        indices = self.assign(vectors)
        return float(np.mean((self.vectors[indices] - vectors) ** 2))

    # -- persistence -----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        np.savez(Path(path), vectors=self.vectors, metric=np.array(self.metric))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WeightPool":
        data = np.load(Path(path), allow_pickle=False)
        return cls(vectors=data["vectors"], metric=str(data["metric"]))


def collect_poolable_vectors(
    model: Module,
    input_shape: Tuple[int, int, int],
    policy: Optional[CompressionPolicy] = None,
) -> Tuple[np.ndarray, List[LayerTrace]]:
    """Gather z-dimension weight vectors from every policy-eligible layer."""
    policy = policy or CompressionPolicy()
    traces = trace_model(model, input_shape)
    eligible = [t for t in traces if policy.eligible(t)]
    if not eligible:
        raise ValueError(
            "no layers are eligible for weight-pool compression under the given policy"
        )
    chunks = []
    for trace in eligible:
        weight = trace.module.weight.data
        if trace.kind == "conv":
            if policy.pad_channels:
                weight = pad_channels_to_group(weight, policy.group_size)
            chunks.append(extract_z_vectors(weight, policy.group_size))
        else:
            chunks.append(extract_linear_z_vectors(weight, policy.group_size))
    return np.concatenate(chunks, axis=0), eligible


def build_weight_pool(
    model: Module,
    input_shape: Tuple[int, int, int],
    pool_size: int = 64,
    policy: Optional[CompressionPolicy] = None,
    metric: str = "cosine",
    max_cluster_vectors: int = 20000,
    seed: SeedLike = 0,
) -> WeightPool:
    """Cluster a pretrained model's weight vectors into a shared pool.

    ``max_cluster_vectors`` bounds the number of vectors handed to K-means (a
    uniform subsample is used beyond that), keeping pool generation fast on
    large networks without materially changing the centroids.
    """
    policy = policy or CompressionPolicy()
    vectors, _ = collect_poolable_vectors(model, input_shape, policy)
    rng = new_rng(seed)
    if len(vectors) > max_cluster_vectors:
        subset = rng.choice(len(vectors), size=max_cluster_vectors, replace=False)
        cluster_input = vectors[subset]
    else:
        cluster_input = vectors
    result = kmeans(cluster_input, pool_size, metric=metric, seed=rng)
    return WeightPool(vectors=result.centroids, metric=metric)
