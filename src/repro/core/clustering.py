"""K-means clustering with cosine or Euclidean distance.

The paper clusters weight vectors with K-means using a *cosine* distance
metric "to avoid scaling dependence" (§3).  With the cosine metric, vectors
are assigned to the centroid with the highest cosine similarity; centroids are
updated as the mean of their assigned (un-normalised) member vectors so that
pool entries keep a meaningful magnitude — they directly become the network's
weights (z-dimension pools use no scaling coefficients).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, new_rng


@dataclass
class KMeansResult:
    """Clustering output: centroids, assignments, and the final inertia."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iter: int
    metric: str


def _normalize_rows(x: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    return x / np.maximum(norms, 1e-12)


def _cosine_distance_matrix(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise cosine distances ``1 - cos(x_i, c_j)`` (clipped at 0 for float safety)."""
    return np.maximum(1.0 - _normalize_rows(x) @ _normalize_rows(centroids).T, 0.0)


def _euclidean_distance_matrix(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances."""
    x_sq = (x**2).sum(axis=1, keepdims=True)
    c_sq = (centroids**2).sum(axis=1)
    return np.maximum(x_sq + c_sq - 2.0 * x @ centroids.T, 0.0)


def _distance_matrix(x: np.ndarray, centroids: np.ndarray, metric: str) -> np.ndarray:
    if metric == "cosine":
        return _cosine_distance_matrix(x, centroids)
    if metric == "euclidean":
        return _euclidean_distance_matrix(x, centroids)
    raise ValueError(f"unknown metric '{metric}' (expected 'cosine' or 'euclidean')")


def _kmeans_plusplus_init(
    x: np.ndarray, k: int, metric: str, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding using the chosen metric."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = x[first]
    closest = np.maximum(_distance_matrix(x, centroids[:1], metric)[:, 0], 0.0)
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points coincide with existing centroids; fall back to random picks.
            centroids[i] = x[int(rng.integers(n))]
            continue
        probabilities = closest / total
        probabilities = probabilities / probabilities.sum()
        choice = int(rng.choice(n, p=probabilities))
        centroids[i] = x[choice]
        new_dist = np.maximum(_distance_matrix(x, centroids[i : i + 1], metric)[:, 0], 0.0)
        closest = np.minimum(closest, new_dist)
    return centroids


def kmeans(
    vectors: np.ndarray,
    num_clusters: int,
    metric: str = "cosine",
    max_iter: int = 50,
    tol: float = 1e-6,
    seed: SeedLike = 0,
) -> KMeansResult:
    """Cluster ``vectors`` (shape ``(N, D)``) into ``num_clusters`` groups.

    Empty clusters are re-seeded with the points farthest from their assigned
    centroid so the requested pool size is always honoured.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError(f"expected (N, D) vectors, got shape {vectors.shape}")
    n = vectors.shape[0]
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if n < num_clusters:
        raise ValueError(
            f"cannot form {num_clusters} clusters from {n} vectors; "
            "reduce the pool size or provide more weight vectors"
        )
    rng = new_rng(seed)
    centroids = _kmeans_plusplus_init(vectors, num_clusters, metric, rng)

    assignments = np.zeros(n, dtype=np.int64)
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        distances = _distance_matrix(vectors, centroids, metric)
        new_assignments = distances.argmin(axis=1)
        point_distances = distances[np.arange(n), new_assignments]

        new_centroids = centroids.copy()
        for cluster in range(num_clusters):
            members = vectors[new_assignments == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster with the worst-fit point.
                worst = int(point_distances.argmax())
                new_centroids[cluster] = vectors[worst]
                point_distances[worst] = 0.0

        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        converged = np.array_equal(new_assignments, assignments) or shift < tol
        assignments = new_assignments
        if converged and n_iter > 1:
            break

    distances = _distance_matrix(vectors, centroids, metric)
    assignments = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), assignments].sum())
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        n_iter=n_iter,
        metric=metric,
    )
