"""Dot-product lookup tables between 1-bit activation vectors and pool vectors.

For a pool of ``S`` weight vectors of length ``N`` (the group size), the LUT
stores the dot product of every possible 1-bit activation vector (there are
``2^N`` of them) with every pool vector — ``2^N × S`` entries total
(Eq. 3: ``Storage_LUT = 2^N × S × B_l``).  Bit ``i`` of the activation value
(LSB first) corresponds to element ``i`` of the pool vector.

Two storage layouts exist on the MCU (paper §4.2): *input-oriented* order
(blocks of ``S`` entries per activation value — the layout that makes LUT
caching effective) and *weight-oriented* order (blocks of ``2^N`` entries per
pool vector).  The layout only affects the memory-system cost model; lookups
through this class are layout-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.weight_pool import WeightPool


def enumerate_bit_vectors(group_size: int) -> np.ndarray:
    """All ``2^g`` possible 1-bit activation vectors as a ``(2^g, g)`` 0/1 matrix.

    Row ``v`` contains the binary digits of ``v`` with bit ``i`` (LSB first) in
    column ``i``.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if group_size > 16:
        raise ValueError(
            f"group_size {group_size} would require a {2**group_size}-entry LUT; "
            "the paper uses 8"
        )
    values = np.arange(1 << group_size, dtype=np.int64)
    return ((values[:, None] >> np.arange(group_size)) & 1).astype(np.float64)


@dataclass
class LookupTable:
    """The network-wide dot-product LUT, optionally quantized.

    Attributes
    ----------
    values:
        Float table of shape ``(2^g, S)``: ``values[v, s]`` is the dot product
        of the 1-bit activation vector encoded by ``v`` with pool vector ``s``.
        When ``bitwidth`` is set, these are the *dequantized* values actually
        used at inference (integer entry × scale).
    integer_values:
        The raw integer entries when quantized, else ``None``.
    bitwidth:
        LUT storage bitwidth ``B_l`` (None means full precision floats).
    order:
        ``"input"`` or ``"weight"`` storage layout (affects only MCU modeling).
    """

    values: np.ndarray
    pool_size: int
    group_size: int
    bitwidth: Optional[int] = None
    scale: Optional[float] = None
    integer_values: Optional[np.ndarray] = None
    order: str = "input"

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        expected = (1 << self.group_size, self.pool_size)
        if self.values.shape != expected:
            raise ValueError(
                f"LUT shape {self.values.shape} does not match expected {expected}"
            )
        if self.order not in ("input", "weight"):
            raise ValueError(f"order must be 'input' or 'weight', got {self.order}")

    # -- sizes -----------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Total number of table entries (``2^g × S``)."""
        return int(self.values.size)

    def storage_bits(self) -> int:
        """Eq. 3: storage of the LUT in bits (floats count as 32-bit)."""
        entry_bits = self.bitwidth if self.bitwidth is not None else 32
        return self.num_entries * entry_bits

    def storage_bytes(self) -> float:
        return self.storage_bits() / 8.0

    # -- lookups ----------------------------------------------------------------
    def lookup(self, bit_values: np.ndarray, pool_indices: np.ndarray) -> np.ndarray:
        """Gather ``values[bit_values, pool_indices]`` with broadcasting."""
        bit_values = np.asarray(bit_values)
        pool_indices = np.asarray(pool_indices)
        if bit_values.size and (bit_values.min() < 0 or bit_values.max() >= self.values.shape[0]):
            raise ValueError("bit value out of range for this LUT")
        if pool_indices.size and (
            pool_indices.min() < 0 or pool_indices.max() >= self.pool_size
        ):
            raise ValueError("pool index out of range for this LUT")
        return self.values[bit_values, pool_indices]

    def pool_vector_sums(self) -> np.ndarray:
        """Dot product of the all-ones bit vector with each pool vector.

        This is exactly the LUT row for value ``2^g - 1`` and is what an MCU
        implementation uses for the activation zero-point correction term.
        """
        return self.values[(1 << self.group_size) - 1]

    # -- quantization -------------------------------------------------------------
    def quantize(self, bitwidth: int) -> "LookupTable":
        """Quantize table entries symmetrically to ``bitwidth`` bits (§3.2, Table 5)."""
        if self.bitwidth is not None:
            raise ValueError("LUT is already quantized; quantize the float LUT instead")
        if not 2 <= bitwidth <= 16:
            raise ValueError(f"LUT bitwidth must be in [2, 16], got {bitwidth}")
        max_abs = float(np.max(np.abs(self.values))) if self.values.size else 1.0
        if max_abs == 0.0:
            max_abs = 1.0
        qmax = (1 << (bitwidth - 1)) - 1
        scale = max_abs / qmax
        # Store entries in the smallest sufficient signed dtype — the MCU
        # layout the storage model assumes, and what the kernel plans gather.
        store_dtype = np.int8 if bitwidth <= 8 else np.int16
        integer = np.clip(np.round(self.values / scale), -qmax - 1, qmax).astype(store_dtype)
        return LookupTable(
            values=integer * scale,
            pool_size=self.pool_size,
            group_size=self.group_size,
            bitwidth=bitwidth,
            scale=scale,
            integer_values=integer,
            order=self.order,
        )


def build_lut(pool: WeightPool, order: str = "input") -> LookupTable:
    """Generate the full-precision LUT for a weight pool."""
    bit_vectors = enumerate_bit_vectors(pool.group_size)  # (2^g, g)
    values = bit_vectors @ pool.vectors.T  # (2^g, S)
    return LookupTable(
        values=values,
        pool_size=pool.size,
        group_size=pool.group_size,
        order=order,
    )
