"""Microcontroller device models (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import KiB


@dataclass(frozen=True)
class CycleCosts:
    """Effective per-operation cycle costs of a Cortex-M3-class core.

    These are *effective* (pipeline-amortised) costs rather than data-sheet
    instruction timings; the same table is used for every kernel so relative
    comparisons depend only on operation counts.

    Attributes
    ----------
    sram_load / sram_store:
        Access to on-chip SRAM.
    flash_seq_load:
        Sequential flash read (prefetch/accelerator friendly) — weight and
        index streaming.
    flash_rand_load:
        Random flash read (accelerator miss) — LUT lookups when the table is
        not cached in SRAM.
    mac:
        Multiply-accumulate.
    alu:
        Simple ALU operation (shift, add, mask).
    loop:
        Per-iteration loop bookkeeping (increment, compare, branch),
        amortised.
    """

    sram_load: float = 1.0
    sram_store: float = 1.0
    flash_seq_load: float = 2.0
    flash_rand_load: float = 3.0
    mac: float = 1.0
    alu: float = 0.5
    loop: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "sram_load",
            "sram_store",
            "flash_seq_load",
            "flash_rand_load",
            "mac",
            "alu",
            "loop",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.flash_rand_load < self.flash_seq_load:
            raise ValueError("random flash access cannot be cheaper than sequential")
        if self.flash_seq_load < self.sram_load:
            raise ValueError("flash access cannot be cheaper than SRAM access")


@dataclass(frozen=True)
class MCUDevice:
    """A microcontroller target: memory sizes, clock, and cycle costs."""

    name: str
    part: str
    sram_bytes: int
    flash_bytes: int
    freq_mhz: float
    costs: CycleCosts = field(default_factory=CycleCosts)
    code_reserve_bytes: int = 24 * KiB  # flash reserved for code + runtime
    sram_reserve_bytes: int = 4 * KiB  # SRAM reserved for stack + globals

    def __post_init__(self) -> None:
        if self.sram_bytes <= 0 or self.flash_bytes <= 0 or self.freq_mhz <= 0:
            raise ValueError("memory sizes and frequency must be positive")

    @property
    def available_flash_bytes(self) -> int:
        return max(self.flash_bytes - self.code_reserve_bytes, 0)

    @property
    def available_sram_bytes(self) -> int:
        return max(self.sram_bytes - self.sram_reserve_bytes, 0)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at the device clock."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles / (self.freq_mhz * 1e6)


# Paper Table 2: STM Nucleo boards, both Cortex-M3.
MC_LARGE = MCUDevice(
    name="MC-large",
    part="STM32F207ZG",
    sram_bytes=128 * KiB,
    flash_bytes=1024 * KiB,
    freq_mhz=120.0,
    # The F207's ART accelerator makes sequential flash cheap but random LUT
    # accesses still miss; SRAM is single-cycle-ish when pipelined.
    costs=CycleCosts(
        sram_load=1.0,
        sram_store=1.0,
        flash_seq_load=2.0,
        flash_rand_load=3.5,
        mac=1.0,
        alu=0.5,
        loop=0.5,
    ),
)

MC_SMALL = MCUDevice(
    name="MC-small",
    part="STM32F103RB",
    sram_bytes=20 * KiB,
    flash_bytes=128 * KiB,
    freq_mhz=72.0,
    # Lower clock -> fewer flash wait states, but no accelerator.
    costs=CycleCosts(
        sram_load=1.0,
        sram_store=1.0,
        flash_seq_load=2.0,
        flash_rand_load=3.0,
        mac=1.0,
        alu=0.5,
        loop=0.5,
    ),
)

DEVICES = {device.name: device for device in (MC_LARGE, MC_SMALL)}
