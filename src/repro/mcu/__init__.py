"""Microcontroller cost-model simulator.

The paper measures runtime with hardware cycle counters on two STM32 Nucleo
boards (Table 2).  This package substitutes an analytical Cortex-M3 cycle-cost
model: every kernel walks the *same loop structure* as the paper's
implementation (Algorithm 1 for the bit-serial LUT kernel, a CMSIS-NN-style
direct convolution for the baseline) and charges per-operation costs from a
:class:`~repro.mcu.device.CycleCosts` table (SRAM vs. sequential-flash vs.
random-flash accesses, MAC/ALU ops, loop bookkeeping).

Absolute cycle counts are approximate (see DESIGN.md §2); relative speedups —
scaling with the number of filters, with activation bitwidth, the
precomputation crossover at ``#filters > pool size``, and flash-vs-SRAM LUT
caching gains — derive from operation counts and are the quantities compared
against the paper's Figures 7–8 and Table 7.
"""

from repro.mcu.device import MCUDevice, CycleCosts, MC_LARGE, MC_SMALL, DEVICES
from repro.mcu.kernels.cmsis import cmsis_conv_cycles, cmsis_linear_cycles
from repro.mcu.kernels.bitserial import (
    BitSerialKernelConfig,
    bitserial_conv_cycles,
    bitserial_layer_breakdown,
)
from repro.mcu.kernels.memoization import memoized_conv_cycles
from repro.mcu.executor import (
    LayerLatency,
    NetworkLatencyReport,
    estimate_cmsis_network,
    estimate_weight_pool_network,
)
from repro.mcu.bundle import SourceBundle, build_source_bundle, write_source_bundle

__all__ = [
    "SourceBundle",
    "build_source_bundle",
    "write_source_bundle",
    "MCUDevice",
    "CycleCosts",
    "MC_LARGE",
    "MC_SMALL",
    "DEVICES",
    "cmsis_conv_cycles",
    "cmsis_linear_cycles",
    "BitSerialKernelConfig",
    "bitserial_conv_cycles",
    "bitserial_layer_breakdown",
    "memoized_conv_cycles",
    "LayerLatency",
    "NetworkLatencyReport",
    "estimate_cmsis_network",
    "estimate_weight_pool_network",
]
