"""Cycle model of the bit-serial LUT convolution kernel (paper Algorithm 1, §4).

The kernel walks, per layer::

    for output y, output x:                       # output positions
      for kernel y, kernel x:                     # receptive-field offsets
        for input channel group:                  # C / group_size
          (1) activation vector decomposition (bit unpacking)
          (2) LUT caching (flash -> SRAM)         [optional, §4.2]
          if precomputation:                       [optional, §4.3]
            (3) for each pool vector, for each active bit:
                  result lookup + shift + accumulate;  store to SRAM
            (4) for each filter: index load + precomputed-result load + accumulate
          else:
            (5) for each filter: index load
                  for each active bit: result lookup + shift + accumulate

The cost of each numbered step is charged from the device's
:class:`~repro.mcu.device.CycleCosts`; this module exposes both the total and
a per-step breakdown (useful for the Figure 7/8 analyses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.tracing import LayerTrace
from repro.mcu.device import MCUDevice


@dataclass(frozen=True)
class BitSerialKernelConfig:
    """Configuration of the bit-serial kernel cost model."""

    pool_size: int = 64
    group_size: int = 8
    activation_bitwidth: int = 8
    lut_caching: bool = True
    precompute: str = "auto"  # "auto" (paper rule: filters > pool size), "always", "never"
    lut_entry_bytes: int = 1  # 8-bit LUT entries
    index_bytes: int = 1  # 8-bit index storage (paper §3.2 note)
    share_unpacking: bool = True  # input-reuse dataflow (§4.1); False models the naive flow

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {self.pool_size}")
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if not 1 <= self.activation_bitwidth <= 8:
            raise ValueError(
                f"activation_bitwidth must be in [1, 8], got {self.activation_bitwidth}"
            )
        if self.precompute not in ("auto", "always", "never"):
            raise ValueError(
                f"precompute must be 'auto', 'always' or 'never', got {self.precompute}"
            )

    def uses_precompute(self, num_filters: int) -> bool:
        """The paper's rule: precompute only when the layer has more filters than pool entries."""
        if self.precompute == "always":
            return True
        if self.precompute == "never":
            return False
        return num_filters > self.pool_size


@dataclass
class BitSerialLayerBreakdown:
    """Per-step cycle breakdown for one layer."""

    unpack: float = 0.0
    lut_cache: float = 0.0
    precompute: float = 0.0
    filter_loop: float = 0.0
    output_writeback: float = 0.0
    used_precompute: bool = False
    iterations: int = 0

    @property
    def total(self) -> float:
        return (
            self.unpack
            + self.lut_cache
            + self.precompute
            + self.filter_loop
            + self.output_writeback
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "unpack": self.unpack,
            "lut_cache": self.lut_cache,
            "precompute": self.precompute,
            "filter_loop": self.filter_loop,
            "output_writeback": self.output_writeback,
            "total": self.total,
        }


def _unpack_cycles_per_group(config: BitSerialKernelConfig, device: MCUDevice) -> float:
    """Decompose one activation vector (``group_size`` elements × ``M`` bits).

    Each element is loaded once from SRAM; each (element, bit) pair costs a
    shift, a mask, and an OR into the bit-row word (3 ALU ops), matching the
    paper's observation that an 8-element 8-bit vector needs 64 unpacking
    iterations.  The assembled bit rows are stored back to SRAM (one store per
    bit row).
    """
    costs = device.costs
    g = config.group_size
    m = config.activation_bitwidth
    element_loads = g * costs.sram_load
    per_bit_ops = g * m * (2 * costs.alu + costs.loop)  # shift+mask, OR into bit row
    row_stores = m * costs.sram_store
    return element_loads + per_bit_ops + row_stores


def _lut_cache_cycles_per_group(config: BitSerialKernelConfig, device: MCUDevice) -> float:
    """Copy the active LUT blocks (``M`` rows × ``S`` entries) from flash to SRAM.

    8-bit entries are copied four-at-a-time as 32-bit words (sequential flash
    reads), which is how a real implementation would do the block copy.
    """
    costs = device.costs
    entries = config.activation_bitwidth * config.pool_size
    entries_per_word = max(4 // config.lut_entry_bytes, 1)
    words = entries / entries_per_word
    return words * (costs.flash_seq_load + costs.sram_store + costs.alu)


def bitserial_layer_breakdown(
    trace: LayerTrace, config: BitSerialKernelConfig, device: MCUDevice
) -> BitSerialLayerBreakdown:
    """Full per-step cost breakdown of one compressed convolution layer."""
    if trace.kind != "conv":
        raise ValueError(f"expected a conv trace, got kind='{trace.kind}'")
    if trace.groups != 1:
        raise ValueError("bit-serial kernel models only dense (groups=1) convolutions")
    costs = device.costs
    g = config.group_size
    m = config.activation_bitwidth
    s = config.pool_size
    f = trace.out_channels
    oh, ow = trace.output_hw
    kh = kw = trace.kernel_size
    channel_groups = -(-trace.in_channels // g)  # ceil: padded thin layers
    iterations = oh * ow * kh * kw * channel_groups
    use_precompute = config.uses_precompute(f)

    breakdown = BitSerialLayerBreakdown(used_precompute=use_precompute, iterations=iterations)

    # (1) bit unpacking — shared across filters under the input-reuse dataflow,
    # repeated per filter in the naive dataflow (§4.1).
    unpack_per_group = _unpack_cycles_per_group(config, device)
    unpack_multiplier = 1 if config.share_unpacking else f
    breakdown.unpack = iterations * unpack_per_group * unpack_multiplier

    # (2) LUT caching.
    lookup_cost = costs.sram_load if config.lut_caching else costs.flash_rand_load
    if config.lut_caching:
        breakdown.lut_cache = iterations * _lut_cache_cycles_per_group(config, device)

    per_bit_lookup = lookup_cost + 2 * costs.alu + costs.loop  # lookup, shift, accumulate
    # Weight indices are byte-sized and laid out sequentially; the filter loop
    # streams them four at a time as 32-bit words.
    index_load = config.index_bytes * costs.flash_seq_load / 4.0 + costs.alu

    if use_precompute:
        # (3) bit-serial loop over every pool vector, results stored to SRAM.
        per_pool_vector = m * per_bit_lookup + costs.sram_store
        breakdown.precompute = iterations * s * per_pool_vector
        # (4) filter loop: stream the index, load the precomputed result, accumulate.
        per_filter = index_load + costs.sram_load + costs.alu + costs.loop
        breakdown.filter_loop = iterations * f * per_filter
    else:
        # (5) filter loop with the bit-serial lookup inline.
        per_filter = index_load + m * per_bit_lookup + costs.loop
        breakdown.filter_loop = iterations * f * per_filter

    # Output writeback / requantization: per output element.
    outputs = f * oh * ow
    breakdown.output_writeback = outputs * (4 * costs.alu + costs.sram_store)
    return breakdown


def bitserial_conv_cycles(
    trace: LayerTrace, config: BitSerialKernelConfig, device: MCUDevice
) -> float:
    """Total cycles for one compressed convolution layer."""
    return bitserial_layer_breakdown(trace, config, device).total


def bitserial_linear_cycles(
    trace: LayerTrace, config: BitSerialKernelConfig, device: MCUDevice
) -> float:
    """Cycles for a weight-pool compressed fully-connected layer.

    A compressed FC layer is a single "output position" with ``in/g`` channel
    groups; the same Algorithm 1 structure applies with KH = KW = OH = OW = 1.
    """
    if trace.kind != "linear":
        raise ValueError(f"expected a linear trace, got kind='{trace.kind}'")
    costs = device.costs
    g = config.group_size
    m = config.activation_bitwidth
    s = config.pool_size
    f = trace.out_channels
    channel_groups = -(-trace.in_channels // g)
    iterations = channel_groups
    use_precompute = config.uses_precompute(f)

    unpack = iterations * _unpack_cycles_per_group(config, device)
    cache = iterations * _lut_cache_cycles_per_group(config, device) if config.lut_caching else 0.0
    lookup_cost = costs.sram_load if config.lut_caching else costs.flash_rand_load
    per_bit_lookup = lookup_cost + 2 * costs.alu + costs.loop
    index_load = config.index_bytes * costs.flash_seq_load / 4.0 + costs.alu
    if use_precompute:
        core = iterations * (
            s * (m * per_bit_lookup + costs.sram_store)
            + f * (index_load + costs.sram_load + costs.alu + costs.loop)
        )
    else:
        core = iterations * f * (index_load + m * per_bit_lookup + costs.loop)
    writeback = f * (4 * costs.alu + costs.sram_store)
    return unpack + cache + core + writeback
