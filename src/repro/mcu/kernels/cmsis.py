"""Cycle model of a CMSIS-NN-style int8 (q7) convolution on Cortex-M3.

CMSIS-NN on Cortex-M3 (no DSP extension) executes a direct/im2col convolution
whose inner loop performs, per multiply-accumulate: one activation load from
SRAM, one weight load streamed from flash, one MAC, plus amortised loop
bookkeeping.  Each output element additionally pays a requantization step
(scale/shift, saturation, store).
"""

from __future__ import annotations

from repro.core.tracing import LayerTrace
from repro.mcu.device import MCUDevice

# Requantization of one output element: multiply, shift, saturate, store.
_REQUANT_ALU_OPS = 4


def cmsis_conv_cycles(trace: LayerTrace, device: MCUDevice) -> float:
    """Cycles to execute one convolution layer with the CMSIS-style kernel."""
    if trace.kind != "conv":
        raise ValueError(f"expected a conv trace, got kind='{trace.kind}'")
    costs = device.costs
    macs = trace.macs
    # Per MAC: activation byte load (SRAM), weight byte load streamed from
    # flash, sign-extension of the q7 operands (no DSP extension on M3), the
    # multiply-accumulate itself and amortised loop bookkeeping.
    per_mac = costs.sram_load + costs.flash_seq_load + costs.alu + costs.mac + costs.loop
    oh, ow = trace.output_hw
    outputs = trace.out_channels * oh * ow
    per_output = _REQUANT_ALU_OPS * costs.alu + costs.sram_store
    bias_load = trace.out_channels * costs.flash_seq_load if trace.has_bias else 0.0
    return macs * per_mac + outputs * per_output + bias_load


def cmsis_linear_cycles(trace: LayerTrace, device: MCUDevice) -> float:
    """Cycles to execute one fully-connected layer with the CMSIS-style kernel."""
    if trace.kind != "linear":
        raise ValueError(f"expected a linear trace, got kind='{trace.kind}'")
    costs = device.costs
    macs = trace.macs
    per_mac = costs.sram_load + costs.flash_seq_load + costs.alu + costs.mac + costs.loop
    per_output = _REQUANT_ALU_OPS * costs.alu + costs.sram_store
    bias_load = trace.out_channels * costs.flash_seq_load if trace.has_bias else 0.0
    return macs * per_mac + trace.out_channels * per_output + bias_load


def cmsis_layer_cycles(trace: LayerTrace, device: MCUDevice) -> float:
    """Dispatch on layer kind."""
    if trace.kind == "conv":
        return cmsis_conv_cycles(trace, device)
    return cmsis_linear_cycles(trace, device)
