"""Cost model of the memoization alternative to precomputation (paper §4.3 / appendix).

Instead of precomputing the dot products of the current activation vector with
*every* pool vector before the filter loop, memoization computes them lazily:
the first time a pool index appears in the filter loop its bit-serial result is
computed and stored; later occurrences re-load the stored value.  The paper
compares the two and finds precomputation faster for wide layers; this module
reproduces that comparison (ablation benchmark).
"""

from __future__ import annotations

from repro.core.tracing import LayerTrace
from repro.mcu.device import MCUDevice
from repro.mcu.kernels.bitserial import (
    BitSerialKernelConfig,
    _lut_cache_cycles_per_group,
    _unpack_cycles_per_group,
)


def expected_unique_indices(pool_size: int, num_filters: int) -> float:
    """Expected number of distinct pool indices among ``num_filters`` uniform draws."""
    if pool_size < 1 or num_filters < 0:
        raise ValueError("pool_size must be >= 1 and num_filters >= 0")
    return pool_size * (1.0 - (1.0 - 1.0 / pool_size) ** num_filters)


def memoized_conv_cycles(
    trace: LayerTrace, config: BitSerialKernelConfig, device: MCUDevice
) -> float:
    """Cycles for one compressed conv layer using dynamic memoization."""
    if trace.kind != "conv":
        raise ValueError(f"expected a conv trace, got kind='{trace.kind}'")
    costs = device.costs
    g = config.group_size
    m = config.activation_bitwidth
    f = trace.out_channels
    oh, ow = trace.output_hw
    kh = kw = trace.kernel_size
    channel_groups = -(-trace.in_channels // g)
    iterations = oh * ow * kh * kw * channel_groups

    unpack = iterations * _unpack_cycles_per_group(config, device)
    cache = (
        iterations * _lut_cache_cycles_per_group(config, device)
        if config.lut_caching
        else 0.0
    )
    lookup_cost = costs.sram_load if config.lut_caching else costs.flash_rand_load
    per_bit_lookup = lookup_cost + 2 * costs.alu + costs.loop

    unique = expected_unique_indices(config.pool_size, f)
    # Every filter: word-packed index load + memo-table presence check
    # (load + compare + branch).
    index_load = config.index_bytes * costs.flash_seq_load / 4.0 + costs.alu
    per_filter_always = index_load + costs.sram_load + 2 * costs.alu + costs.loop
    # First occurrence of an index: full bit-serial computation + store to the memo table.
    per_unique = m * per_bit_lookup + costs.sram_store
    # Repeated occurrence: load the memoized value + accumulate.
    per_repeat = costs.sram_load + costs.alu
    repeats = max(f - unique, 0.0)
    core = iterations * (
        f * per_filter_always + unique * per_unique + repeats * per_repeat
    )
    # Memo-table validity flags must be cleared before each filter loop.
    reset = iterations * config.pool_size * costs.sram_store * 0.25  # word-wide clears
    writeback = f * oh * ow * (4 * costs.alu + costs.sram_store)
    return unpack + cache + core + reset + writeback
