"""Kernel-level cycle-cost models."""

from repro.mcu.kernels.cmsis import cmsis_conv_cycles, cmsis_linear_cycles
from repro.mcu.kernels.bitserial import (
    BitSerialKernelConfig,
    bitserial_conv_cycles,
    bitserial_layer_breakdown,
)
from repro.mcu.kernels.memoization import memoized_conv_cycles

__all__ = [
    "cmsis_conv_cycles",
    "cmsis_linear_cycles",
    "BitSerialKernelConfig",
    "bitserial_conv_cycles",
    "bitserial_layer_breakdown",
    "memoized_conv_cycles",
]
