"""Whole-network latency estimation and memory-fit checking on an MCU model.

Reproduces the protocol behind Table 7: a network is deployed either with the
CMSIS-style 8-bit baseline or with the weight-pool bit-serial kernel; the
estimator reports per-layer and total cycles, the wall-clock latency at the
device clock, and whether the deployment fits the device's flash (the paper
marks networks that do not fit with "/").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.policy import CompressionPolicy
from repro.core.storage import analyze_model_storage, lut_storage_bits
from repro.core.tracing import LayerTrace, trace_model
from repro.mcu.device import MCUDevice
from repro.mcu.kernels.bitserial import (
    BitSerialKernelConfig,
    bitserial_conv_cycles,
    bitserial_linear_cycles,
)
from repro.mcu.kernels.cmsis import cmsis_conv_cycles, cmsis_linear_cycles
from repro.nn import Module


@dataclass
class LayerLatency:
    """Cycle count of one layer under a given deployment."""

    name: str
    kind: str
    compressed: bool
    cycles: float
    macs: int


@dataclass
class NetworkLatencyReport:
    """Latency and memory-fit summary of one network on one device."""

    network: str
    device: MCUDevice
    mode: str  # "cmsis" or "weight_pool"
    layers: List[LayerLatency]
    flash_bytes_needed: float
    sram_bytes_needed: float
    activation_bitwidth: int = 8

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def latency_seconds(self) -> float:
        return self.device.cycles_to_seconds(self.total_cycles)

    @property
    def fits_flash(self) -> bool:
        return self.flash_bytes_needed <= self.device.available_flash_bytes

    @property
    def fits_sram(self) -> bool:
        return self.sram_bytes_needed <= self.device.available_sram_bytes

    @property
    def latency_or_none(self) -> Optional[float]:
        """Latency in seconds, or ``None`` when the network does not fit in flash.

        Mirrors the "/" entries of Table 7.
        """
        return self.latency_seconds if self.fits_flash else None


def _activation_sram_bytes(traces: List[LayerTrace]) -> float:
    """Peak activation working set: largest (input + output) of any conv/linear layer.

    Activations are 8-bit on the MCU.  This matches the double-buffering scheme
    CMSIS-NN and the paper's kernel both use.
    """
    peak = 0.0
    for trace in traces:
        ih, iw = trace.input_hw
        oh, ow = trace.output_hw
        if trace.kind == "conv":
            in_bytes = trace.in_channels * ih * iw
            out_bytes = trace.out_channels * oh * ow
        else:
            in_bytes = trace.in_channels
            out_bytes = trace.out_channels
        peak = max(peak, float(in_bytes + out_bytes))
    return peak


def estimate_cmsis_network(
    model: Module,
    input_shape: Tuple[int, int, int],
    device: MCUDevice,
    network_name: str = "network",
) -> NetworkLatencyReport:
    """Latency of the 8-bit CMSIS-style deployment of ``model`` on ``device``."""
    traces = trace_model(model, input_shape)
    layers = []
    total_weight_bytes = 0.0
    for trace in traces:
        cycles = (
            cmsis_conv_cycles(trace, device)
            if trace.kind == "conv"
            else cmsis_linear_cycles(trace, device)
        )
        layers.append(
            LayerLatency(
                name=trace.name,
                kind=trace.kind,
                compressed=False,
                cycles=cycles,
                macs=trace.macs,
            )
        )
        total_weight_bytes += trace.weight_params + trace.bias_params
    return NetworkLatencyReport(
        network=network_name,
        device=device,
        mode="cmsis",
        layers=layers,
        flash_bytes_needed=total_weight_bytes,  # 8-bit weights: one byte each
        sram_bytes_needed=_activation_sram_bytes(traces),
    )


def estimate_weight_pool_network(
    model: Module,
    input_shape: Tuple[int, int, int],
    device: MCUDevice,
    config: Optional[BitSerialKernelConfig] = None,
    policy: Optional[CompressionPolicy] = None,
    network_name: str = "network",
) -> NetworkLatencyReport:
    """Latency of the weight-pool bit-serial deployment of ``model`` on ``device``.

    ``model`` may already contain weight-pool layers (then the actual layer
    types decide what is compressed) or be an uncompressed model (then
    ``policy`` decides hypothetically, which is how the full-size Table 7
    networks are evaluated without materialising the compression).
    """
    config = config or BitSerialKernelConfig()
    policy = policy or CompressionPolicy(group_size=config.group_size)
    traces = trace_model(model, input_shape)

    layers = []
    for trace in traces:
        module = trace.module
        if isinstance(module, (WeightPoolConv2d, WeightPoolLinear)):
            compressed = True
        else:
            compressed = policy.eligible(trace)
        if compressed and trace.kind == "conv":
            cycles = bitserial_conv_cycles(trace, config, device)
        elif compressed and trace.kind == "linear":
            cycles = bitserial_linear_cycles(trace, config, device)
        elif trace.kind == "conv":
            cycles = cmsis_conv_cycles(trace, device)
        else:
            cycles = cmsis_linear_cycles(trace, device)
        layers.append(
            LayerLatency(
                name=trace.name,
                kind=trace.kind,
                compressed=compressed,
                cycles=cycles,
                macs=trace.macs,
            )
        )

    storage = analyze_model_storage(
        model,
        input_shape,
        policy=policy,
        pool_size=config.pool_size,
        index_bitwidth=config.index_bytes * 8,
        lut_bitwidth=config.lut_entry_bytes * 8,
    )
    sram = _activation_sram_bytes(traces)
    if config.lut_caching:
        # Cached active LUT blocks: M rows of S entries.
        sram += config.activation_bitwidth * config.pool_size * config.lut_entry_bytes
    return NetworkLatencyReport(
        network=network_name,
        device=device,
        mode="weight_pool",
        layers=layers,
        flash_bytes_needed=storage.flash_bytes(),
        sram_bytes_needed=sram,
        activation_bitwidth=config.activation_bitwidth,
    )
