"""Whole-network latency estimation and memory-fit checking on an MCU model.

Reproduces the protocol behind Table 7: a network is deployed either with the
CMSIS-style 8-bit baseline or with the weight-pool bit-serial kernel; the
estimator reports per-layer and total cycles, the wall-clock latency at the
device clock, and whether the deployment fits the device's flash (the paper
marks networks that do not fit with "/").

Since the whole-network compiler landed, the estimators consume the same
:class:`~repro.core.program.NetworkProgram` IR the inference executor runs:
the model is lowered once (structurally — no calibration needed) and a
``cost`` executor backend replays the program through the cycle model,
charging each ``conv``/``linear``/``bitserial_*`` op from the device's
:class:`~repro.mcu.device.CycleCosts`.  Models without lowering hooks fall
back to the legacy ``trace_model`` walk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.policy import CompressionPolicy
from repro.core.program import (
    Executor,
    NetworkProgram,
    Step,
    compile_network,
    op_layer_trace,
    register_backend,
)
from repro.core.storage import analyze_model_storage
from repro.core.tracing import LayerTrace, trace_model
from repro.mcu.device import MCUDevice
from repro.mcu.kernels.bitserial import (
    BitSerialKernelConfig,
    bitserial_conv_cycles,
    bitserial_linear_cycles,
)
from repro.mcu.kernels.cmsis import cmsis_conv_cycles, cmsis_linear_cycles
from repro.nn import Module


@dataclass
class LayerLatency:
    """Cycle count of one layer under a given deployment."""

    name: str
    kind: str
    compressed: bool
    cycles: float
    macs: int


@dataclass
class NetworkLatencyReport:
    """Latency and memory-fit summary of one network on one device."""

    network: str
    device: MCUDevice
    mode: str  # "cmsis" or "weight_pool"
    layers: List[LayerLatency]
    flash_bytes_needed: float
    sram_bytes_needed: float
    activation_bitwidth: int = 8

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def latency_seconds(self) -> float:
        return self.device.cycles_to_seconds(self.total_cycles)

    @property
    def fits_flash(self) -> bool:
        return self.flash_bytes_needed <= self.device.available_flash_bytes

    @property
    def fits_sram(self) -> bool:
        return self.sram_bytes_needed <= self.device.available_sram_bytes

    @property
    def latency_or_none(self) -> Optional[float]:
        """Latency in seconds, or ``None`` when the network does not fit in flash.

        Mirrors the "/" entries of Table 7.
        """
        return self.latency_seconds if self.fits_flash else None


def _activation_sram_bytes(traces: List[LayerTrace]) -> float:
    """Peak activation working set: largest (input + output) of any conv/linear layer.

    Activations are 8-bit on the MCU.  This matches the double-buffering scheme
    CMSIS-NN and the paper's kernel both use.
    """
    peak = 0.0
    for trace in traces:
        ih, iw = trace.input_hw
        oh, ow = trace.output_hw
        if trace.kind == "conv":
            in_bytes = trace.in_channels * ih * iw
            out_bytes = trace.out_channels * oh * ow
        else:
            in_bytes = trace.in_channels
            out_bytes = trace.out_channels
        peak = max(peak, float(in_bytes + out_bytes))
    return peak


# ---------------------------------------------------------------------------
# The "cost" executor backend: replay the program through the cycle model
# ---------------------------------------------------------------------------
def _layer_cycles(
    trace: LayerTrace,
    compressed: bool,
    device: MCUDevice,
    config: BitSerialKernelConfig,
) -> float:
    if compressed and trace.kind == "conv":
        return bitserial_conv_cycles(trace, config, device)
    if compressed and trace.kind == "linear":
        return bitserial_linear_cycles(trace, config, device)
    if trace.kind == "conv":
        return cmsis_conv_cycles(trace, device)
    return cmsis_linear_cycles(trace, device)


def _bind_cost(
    program: NetworkProgram,
    executor: Executor,
    device: MCUDevice = None,
    config: Optional[BitSerialKernelConfig] = None,
    policy: Optional[CompressionPolicy] = None,
    mode: str = "weight_pool",
    active_bits: Optional[int] = None,
) -> List[Step]:
    """Bind the ``cost`` backend: per-op cycle attribution, shape-only steps.

    Ops already typed as ``bitserial_*`` (actually-compressed layers) are
    charged with the bit-serial kernel model; float ``conv``/``linear`` ops
    are charged hypothetically per the compression ``policy`` (how the
    full-size Table 7 networks are evaluated without materialising the
    compression).  ``mode="cmsis"`` charges everything as the 8-bit baseline.
    The cycle model is data-independent, so the per-layer report is available
    right after binding (``executor.layer_latencies``) without running data;
    running the executor propagates zero-filled activations of the right
    shape, which lets cost replays participate in executor pipelines.
    ``active_bits`` (forwarded by the engine to every backend) is folded into
    the kernel config's activation bitwidth, the knob the cycle model prices.
    """
    if device is None:
        raise ValueError("the cost backend needs device=<MCUDevice>")
    config = config or BitSerialKernelConfig()
    if active_bits is not None and active_bits != config.activation_bitwidth:
        config = replace(config, activation_bitwidth=active_bits)
    policy = policy or CompressionPolicy(group_size=config.group_size)

    latencies: List[LayerLatency] = []
    steps: List[Step] = []
    first_conv_seen = False
    for op in program.ops:
        trace = op_layer_trace(op)
        if trace is not None:
            trace.is_first = not first_conv_seen and trace.kind == "conv"
            if trace.kind == "conv":
                first_conv_seen = True
            if mode == "cmsis":
                compressed = False
            elif op.kind.startswith("bitserial"):
                compressed = True
            else:
                compressed = policy.eligible(trace)
            latencies.append(
                LayerLatency(
                    name=trace.name,
                    kind=trace.kind,
                    compressed=compressed,
                    cycles=_layer_cycles(trace, compressed, device, config),
                    macs=trace.macs,
                )
            )
        out_shape = op.out_shape
        steps.append(
            Step(
                fn=lambda *args, _shape=out_shape: np.zeros(
                    (args[0].shape[0],) + _shape
                ),
                inputs=op.inputs,
                output=op.output,
            )
        )
    executor.layer_latencies = latencies
    executor.total_cycles = sum(layer.cycles for layer in latencies)
    return steps


register_backend("cost", _bind_cost)


def _program_or_none(model: Module, input_shape: Tuple[int, int, int]) -> Optional[NetworkProgram]:
    """Structurally lower ``model``; ``None`` when it has no lowering hooks.

    Cost replays run the pipeline at ``O0`` (reference lowering): the
    canonical op stream keeps cycle attribution per-layer, and the
    pipeline's IR verifier still checks the lowered program.
    """
    try:
        return compile_network(model, input_shape, level="O0")
    except NotImplementedError:
        return None


def _legacy_trace_latencies(
    traces: List[LayerTrace],
    device: MCUDevice,
    config: BitSerialKernelConfig,
    policy: CompressionPolicy,
    mode: str,
) -> List[LayerLatency]:
    """Fallback cycle attribution for models that cannot be lowered."""
    layers = []
    for trace in traces:
        if mode == "cmsis":
            compressed = False
        elif isinstance(trace.module, (WeightPoolConv2d, WeightPoolLinear)):
            compressed = True
        else:
            compressed = policy.eligible(trace)
        layers.append(
            LayerLatency(
                name=trace.name,
                kind=trace.kind,
                compressed=compressed,
                cycles=_layer_cycles(trace, compressed, device, config),
                macs=trace.macs,
            )
        )
    return layers


def _network_latencies(
    model: Module,
    input_shape: Tuple[int, int, int],
    device: MCUDevice,
    config: BitSerialKernelConfig,
    policy: CompressionPolicy,
    mode: str,
) -> Tuple[List[LayerLatency], List[LayerTrace]]:
    """Per-layer cycles + traces, via the program IR when the model lowers."""
    program = _program_or_none(model, input_shape)
    if program is None:
        traces = trace_model(model, input_shape)
        return _legacy_trace_latencies(traces, device, config, policy, mode), traces
    executor = Executor(
        program, backend="cost", device=device, config=config, policy=policy, mode=mode
    )
    return executor.layer_latencies, program.layer_traces()


def estimate_cmsis_network(
    model: Module,
    input_shape: Tuple[int, int, int],
    device: MCUDevice,
    network_name: str = "network",
) -> NetworkLatencyReport:
    """Latency of the 8-bit CMSIS-style deployment of ``model`` on ``device``."""
    config = BitSerialKernelConfig()
    policy = CompressionPolicy(group_size=config.group_size)
    layers, traces = _network_latencies(
        model, input_shape, device, config, policy, mode="cmsis"
    )
    total_weight_bytes = sum(t.weight_params + t.bias_params for t in traces)
    return NetworkLatencyReport(
        network=network_name,
        device=device,
        mode="cmsis",
        layers=layers,
        flash_bytes_needed=total_weight_bytes,  # 8-bit weights: one byte each
        sram_bytes_needed=_activation_sram_bytes(traces),
    )


def estimate_weight_pool_network(
    model: Module,
    input_shape: Tuple[int, int, int],
    device: MCUDevice,
    config: Optional[BitSerialKernelConfig] = None,
    policy: Optional[CompressionPolicy] = None,
    network_name: str = "network",
) -> NetworkLatencyReport:
    """Latency of the weight-pool bit-serial deployment of ``model`` on ``device``.

    ``model`` may already contain weight-pool layers (then the actual layer
    types — ``bitserial_*`` ops after lowering — decide what is compressed) or
    be an uncompressed model (then ``policy`` decides hypothetically, which is
    how the full-size Table 7 networks are evaluated without materialising the
    compression).
    """
    config = config or BitSerialKernelConfig()
    policy = policy or CompressionPolicy(group_size=config.group_size)
    layers, traces = _network_latencies(
        model, input_shape, device, config, policy, mode="weight_pool"
    )

    storage = analyze_model_storage(
        model,
        input_shape,
        policy=policy,
        pool_size=config.pool_size,
        index_bitwidth=config.index_bytes * 8,
        lut_bitwidth=config.lut_entry_bytes * 8,
    )
    sram = _activation_sram_bytes(traces)
    if config.lut_caching:
        # Cached active LUT blocks: M rows of S entries.
        sram += config.activation_bitwidth * config.pool_size * config.lut_entry_bytes
    return NetworkLatencyReport(
        network=network_name,
        device=device,
        mode="weight_pool",
        layers=layers,
        flash_bytes_needed=storage.flash_bytes(),
        sram_bytes_needed=sram,
        activation_bitwidth=config.activation_bitwidth,
    )
