"""Streaming inference: dirty-tile incremental execution over a frame stream.

This walks the temporal-memoization path documented in
docs/ARCHITECTURE.md §4c and docs/SERVING.md ("Streaming inference"):

1. compress + calibrate a small CNN on synthetic pattern data and compile
   the whole-network program (as in quickstart.py, minus the training),
2. compile a StreamPlan and drive a session over a drifting-patch
   PatternStream, printing the per-frame mode (full / incremental /
   cached), dirty-tile counts, and the incremental-vs-full speedup —
   verifying every streamed prediction is bit-identical to the plain
   executor,
3. publish the program and serve the same stream through
   InferenceServer.stream_request (stateful sessions, session affinity),
4. replay it over the chunked-ndjson HTTP endpoint
   POST /v1/models/<name>/stream, continuing the same server-side session
   across two requests.

Run with:  python examples/stream_quickstart.py           (full demo)
           python examples/stream_quickstart.py --fast    (CI smoke)
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
import urllib.request

import numpy as np

from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    compile_stream_plan,
    compress_model,
    stream_support,
)
from repro.datasets import PatternLibrary
from repro.models import create_model
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset
from repro.serve import InferenceServer, ModelRepository, StreamPolicy, serve_http


def main(seed: int = 0, fast: bool = False, port: int = 0) -> None:
    image_size = 32 if fast else 64
    frames_per_burst = 4 if fast else 12

    # ------------------------------------------- 1. compress + calibrate + compile
    library = PatternLibrary(num_classes=4, channels=3, image_size=image_size, seed=seed)
    model = create_model(
        "tinyconv", num_classes=4, in_channels=3, rng=seed, image_size=image_size
    )
    result = compress_model(
        model, (3, image_size, image_size), pool_size=16,
        policy=CompressionPolicy(group_size=8), seed=seed,
    )
    rng = np.random.default_rng(seed)
    calib_images, calib_labels = library.sample_batch(
        rng.integers(0, 4, size=32), rng=seed
    )
    loader = DataLoader(ArrayDataset(calib_images, calib_labels), batch_size=16)
    engine = BitSerialInferenceEngine(
        result.model, result.pool,
        EngineConfig(activation_bitwidth=8, lut_bitwidth=8, calibration_batches=2),
    )
    engine.calibrate(loader)
    program = engine.compile(optimize=True)
    support = stream_support(program)
    print(f"Compiled tinyconv@{image_size}: {len(program.ops)} ops, "
          f"streamable prefix of {support['cutoff_index']} schedule steps")

    # ------------------------------------------------- 2. core streaming session
    plan = compile_stream_plan(program, tile=8, seed=seed)
    print(f"StreamPlan: tile {plan.tile}px, measured crossover at "
          f"{plan.crossover:.0%} dirty area\n")
    stream = library.stream(0, change_fraction=0.05, rng=seed)
    session = plan.session(threshold=0.0)

    frames = [stream.frame] + [stream.next() for _ in range(frames_per_burst - 1)]
    frames += [frames[-1]]  # an unchanged frame: the cached fast path
    stream_s = full_s = 0.0
    for index, frame in enumerate(frames):
        start = time.perf_counter()
        outputs, info = session.process(frame)
        stream_s += time.perf_counter() - start
        start = time.perf_counter()
        oracle = plan.executor.run(frame[None])[0]
        full_s += time.perf_counter() - start
        assert np.array_equal(outputs, oracle), "streamed != full recompute"
        dirty = ("-" if info["dirty_tiles"] is None
                 else f"{info['dirty_tiles']}/{info['total_tiles']}")
        print(f"  frame {index:2d}: {info['mode']:<11s} dirty tiles {dirty:>7s} "
              f"argmax {int(np.argmax(outputs))}")
    print(f"\nAll {len(frames)} streamed predictions bit-identical to the full "
          f"recompute; steady-state speedup "
          f"{full_s / stream_s:.2f}x (see BENCH_stream.json for the sweep)\n")

    # ------------------------------------------------- 3. served stream sessions
    repo_root = tempfile.mkdtemp(prefix="model-repo-")
    repository = ModelRepository(repo_root)
    repository.publish(program, "tinyconv")
    server = InferenceServer(
        repository, stream=StreamPolicy(session_ttl_s=120.0, tile=8)
    )
    burst = np.stack(frames[: max(2, frames_per_burst // 2)])
    version, sid, results = server.stream_request("tinyconv", burst)
    modes = [result["mode"] for result in results]
    print(f"Served stream session {sid} (v{version}): modes {modes}")
    _, _, results = server.stream_request("tinyconv", burst[-1], session=sid)
    result, = list(results)
    print(f"Same session, unchanged frame -> {result['mode']} "
          f"(argmax {int(np.argmax(result['outputs']))})")
    print("Streaming stats:",
          json.dumps(server.stats("tinyconv")["streaming"], indent=2))

    # ------------------------------------------------- 4. chunked HTTP streaming
    front = serve_http(server, port=port)
    url = front.url
    print(f"\nHTTP front end on {url}")

    def post_stream(payload):
        request = urllib.request.Request(
            f"{url}/v1/models/tinyconv/stream",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=300.0) as response:
            sid = response.headers["X-Stream-Session"]
            lines = [json.loads(line) for line in response if line.strip()]
        return sid, lines

    http_sid, lines = post_stream({"frames": burst.tolist()})
    print(f"POST /v1/models/tinyconv/stream -> session {http_sid}, "
          f"{len(lines)} ndjson lines, modes {[line['mode'] for line in lines]}")
    _, lines = post_stream(
        {"frames": burst[-1].tolist(), "session": http_sid, "close_session": True}
    )
    print(f"Continued + closed {http_sid}: frame {lines[0]['frame']} was "
          f"'{lines[0]['mode']}'")
    print("\nTry it yourself:")
    print(f"  curl -N -X POST {url}/v1/models/tinyconv/stream "
          "-H 'Content-Type: application/json' -d '{\"frames\": [[[0.0, ...]]]}'")

    front.close()
    server.close()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fast", action="store_true",
        help="tiny-scale smoke run (used by CI): smaller frames, fewer of them",
    )
    parser.add_argument("--port", type=int, default=0,
                        help="HTTP port (0 binds an ephemeral port)")
    args = parser.parse_args()
    main(seed=args.seed, fast=args.fast, port=args.port)
