"""Serve a compiled model: export → repository → batched server → HTTP.

This walks the deployment path documented in docs/SERVING.md:

1. train + weight-pool-compress a small CNN (as in quickstart.py),
2. calibrate a bit-serial engine and compile the whole-network program,
3. publish the compiled artifact into an on-disk ModelRepository,
4. serve it with InferenceServer (dynamic micro-batching over a worker
   pool) and compare served predictions against the offline executor,
5. start the stdlib HTTP front end, issue a few JSON requests against it,
   and print the equivalent curl commands plus the serving stats.

Run with:  python examples/serve_quickstart.py           (full demo)
           python examples/serve_quickstart.py --fast    (CI smoke)
           python examples/serve_quickstart.py --serve   (keep serving)
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
import urllib.request

import numpy as np

from repro.core import BitSerialInferenceEngine, CompressionPolicy, EngineConfig, compress_model
from repro.datasets import SyntheticCIFAR10, make_classification_split
from repro.models import create_model
from repro.nn import DataLoader, SGD, TrainConfig, Trainer
from repro.serve import BatchPolicy, InferenceServer, ModelRepository, serve_http


def main(seed: int = 0, fast: bool = False, port: int = 0, serve: bool = False) -> None:
    # ------------------------------------------------- 1. train + compress
    per_class = (8, 6) if fast else (30, 20)
    train_ds, test_ds = make_classification_split(
        SyntheticCIFAR10,
        train_per_class=per_class[0],
        test_per_class=per_class[1],
        seed=seed,
        noise_std=0.5,
    )
    train_loader = DataLoader(train_ds, batch_size=32, shuffle=True, rng=seed)
    model_name = "tinyconv_tiny" if fast else "tinyconv"
    model = create_model(model_name, num_classes=10, in_channels=3, rng=seed)
    print(f"Pretraining {model_name} ...")
    Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9)).fit(
        train_loader, TrainConfig(epochs=1 if fast else 3)
    )
    result = compress_model(
        model, train_ds.input_shape, pool_size=64,
        policy=CompressionPolicy(group_size=8), seed=seed,
    )

    # ------------------------------------- 2. calibrate + compile the program
    engine = BitSerialInferenceEngine(
        result.model, result.pool,
        EngineConfig(activation_bitwidth=8, lut_bitwidth=8, calibration_batches=2),
    )
    engine.calibrate(train_loader)
    program = engine.compile()
    print(f"Compiled program: {len(program.ops)} ops, metadata {program.metadata()['op_counts']}")

    # ------------------------------------------- 3. publish into a repository
    repo_root = tempfile.mkdtemp(prefix="model-repo-")
    repository = ModelRepository(repo_root)
    version = repository.publish(program, "tinyconv")
    print(f"Published tinyconv v{version} under {repo_root}")

    # ------------------------------------------------- 4. serve programmatic
    server = InferenceServer(
        repository, policy=BatchPolicy(max_batch_size=16, max_delay_ms=2.0), workers=1
    )
    samples = np.stack([test_ds[i][0] for i in range(min(len(test_ds), 32))])
    targets = np.array([test_ds[i][1] for i in range(len(samples))])
    futures = [server.predict_async("tinyconv", sample) for sample in samples]
    served = np.stack([future.result(timeout=300.0) for future in futures])
    offline = engine.predict(samples)
    agree = float((served.argmax(axis=1) == offline.argmax(axis=1)).mean())
    accuracy = float((served.argmax(axis=1) == targets).mean())
    print(f"Served {len(samples)} single-sample requests: accuracy {accuracy:.1%}, "
          f"agreement with offline executor {agree:.1%}")

    # ------------------------------------------------------ 5. HTTP front end
    front = serve_http(server, port=port)
    url = front.url
    print(f"HTTP front end listening on {url}")
    with urllib.request.urlopen(f"{url}/healthz", timeout=30.0) as response:
        print("GET /healthz ->", response.read().decode())
    with urllib.request.urlopen(f"{url}/v1/models", timeout=30.0) as response:
        print("GET /v1/models ->", response.read().decode())
    request = urllib.request.Request(
        f"{url}/v1/models/tinyconv/predict",
        data=json.dumps({"inputs": samples[0].tolist()}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=300.0) as response:
        payload = json.loads(response.read())
    print(f"POST /v1/models/tinyconv/predict -> argmax {int(np.argmax(payload['outputs']))} "
          f"(model {payload['model']} v{payload['version']})")
    print()
    print("Stats:", json.dumps(server.stats("tinyconv"), indent=2))
    print()
    print("Try it yourself:")
    print(f"  curl {url}/v1/models/tinyconv/stats")
    print(f"  curl -X POST {url}/v1/models/tinyconv/predict "
          "-H 'Content-Type: application/json' -d '{\"inputs\": [[[0.0, ...]]]}'")

    if serve:
        print("Serving until Ctrl-C ...")
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
    front.close()
    server.close()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fast", action="store_true",
        help="tiny-scale smoke run (used by CI): smaller model, data, epochs",
    )
    parser.add_argument("--port", type=int, default=0,
                        help="HTTP port (0 binds an ephemeral port)")
    parser.add_argument("--serve", action="store_true",
                        help="keep the HTTP front end running until Ctrl-C")
    args = parser.parse_args()
    main(seed=args.seed, fast=args.fast, port=args.port, serve=args.serve)
