"""Deployment study: fit a ResNet onto memory-starved microcontrollers.

The paper's motivation (§1) is that networks like ResNet and MobileNet do not
fit on microcontroller flash without compression.  This example reproduces
that deployment decision end-to-end for the paper's ResNet family:

* report the flash/SRAM the CMSIS int8 baseline would need on MC-large
  (1 MB flash) and MC-small (128 kB flash),
* report the same for the weight-pool deployment (pool 64, 8-bit indices,
  8-bit LUT),
* show which networks fit which device, and the estimated latency for those
  that do — i.e. a per-device deployment plan,
* compile one compressed network into its whole-network program and write
  both deployment artifacts: the serialized executor program (``.npz``) and
  the MCU flash package derived from the same IR.

Run with:  python examples/deploy_resnet_mcu.py
"""

from __future__ import annotations

import pathlib
import tempfile

import numpy as np

from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    compress_model,
    load_program,
    package_from_program,
    save_program,
)
from repro.datasets import SyntheticCIFAR10, make_classification_split
from repro.nn import DataLoader
from repro.mcu import (
    MC_LARGE,
    MC_SMALL,
    BitSerialKernelConfig,
    estimate_cmsis_network,
    estimate_weight_pool_network,
)
from repro.models import create_model
from repro.utils.tabulate import format_table
from repro.utils.units import human_bytes

NETWORKS = (
    ("TinyConv", "tinyconv", 100, 1),
    ("ResNet-s", "resnet_s", 10, 3),
    ("ResNet-10", "resnet10", 10, 3),
    ("ResNet-14", "resnet14", 10, 3),
    ("MobileNet-v2", "mobilenetv2", 100, 3),
)


def main() -> None:
    for device in (MC_LARGE, MC_SMALL):
        rows = []
        for name, registry_name, classes, channels in NETWORKS:
            model = create_model(registry_name, num_classes=classes, in_channels=channels, rng=0)
            input_shape = (channels, 32, 32)
            cmsis = estimate_cmsis_network(model, input_shape, device, name)
            pool = estimate_weight_pool_network(
                model, input_shape, device, BitSerialKernelConfig(pool_size=64), network_name=name
            )
            pool_min = estimate_weight_pool_network(
                model,
                input_shape,
                device,
                BitSerialKernelConfig(pool_size=64, activation_bitwidth=4),
                network_name=name,
            )
            rows.append(
                [
                    name,
                    human_bytes(cmsis.flash_bytes_needed),
                    "yes" if cmsis.fits_flash else "no",
                    None if not cmsis.fits_flash else round(cmsis.latency_seconds, 2),
                    human_bytes(pool.flash_bytes_needed),
                    "yes" if pool.fits_flash else "no",
                    None if not pool.fits_flash else round(pool.latency_seconds, 2),
                    None if not pool_min.fits_flash else round(pool_min.latency_seconds, 2),
                ]
            )
        title = (
            f"{device.name} ({device.part}): flash {human_bytes(device.flash_bytes)}, "
            f"SRAM {human_bytes(device.sram_bytes)}, {device.freq_mhz:.0f} MHz"
        )
        print(
            format_table(
                rows,
                headers=[
                    "network",
                    "int8 flash",
                    "int8 fits?",
                    "int8 latency (s)",
                    "pool flash",
                    "pool fits?",
                    "pool latency (s)",
                    "pool 4-bit latency (s)",
                ],
                title=title,
            )
        )
        print()

    export_program_artifacts()


def export_program_artifacts(seed: int = 0) -> None:
    """Compile ResNet-s into a network program and write both artifacts."""
    print("Compiling ResNet-s (tiny) into a deployable network program ...")
    model = create_model("resnet_s_tiny", num_classes=10, in_channels=3, rng=seed)
    result = compress_model(
        model, (3, 32, 32), pool_size=64, policy=CompressionPolicy(group_size=8), seed=seed
    )
    train_ds, _ = make_classification_split(
        SyntheticCIFAR10, train_per_class=8, test_per_class=4, seed=seed
    )
    engine = BitSerialInferenceEngine(
        result.model,
        result.pool,
        EngineConfig(activation_bitwidth=8, lut_bitwidth=8, calibration_batches=2),
    )
    engine.calibrate(DataLoader(train_ds, batch_size=16, shuffle=True, rng=seed))
    program = engine.compile()

    with tempfile.TemporaryDirectory() as tmp:
        program_path = pathlib.Path(tmp) / "resnet_s.program.npz"
        save_program(program, program_path)
        reloaded = load_program(program_path)
        package = package_from_program(program, "resnet_s_tiny")
        x = np.random.default_rng(seed).normal(size=(2, 3, 32, 32))
        from repro.core import Executor

        identical = np.array_equal(Executor(reloaded).run(x), engine.predict(x))
        print(
            f"  program: {len(program.ops)} ops, artifact "
            f"{program_path.stat().st_size / 1024:.1f} KiB, "
            f"round-trip bit-identical: {identical}"
        )
        print(
            f"  MCU package from the same IR: {len(package.layers)} layers, "
            f"flash {package.flash_bytes / 1024:.1f} KiB"
        )


if __name__ == "__main__":
    main()
