"""Deployment study: fit a ResNet onto memory-starved microcontrollers.

The paper's motivation (§1) is that networks like ResNet and MobileNet do not
fit on microcontroller flash without compression.  This example reproduces
that deployment decision end-to-end for the paper's ResNet family:

* report the flash/SRAM the CMSIS int8 baseline would need on MC-large
  (1 MB flash) and MC-small (128 kB flash),
* report the same for the weight-pool deployment (pool 64, 8-bit indices,
  8-bit LUT),
* show which networks fit which device, and the estimated latency for those
  that do — i.e. a per-device deployment plan.

Run with:  python examples/deploy_resnet_mcu.py
"""

from __future__ import annotations

from repro.mcu import (
    MC_LARGE,
    MC_SMALL,
    BitSerialKernelConfig,
    estimate_cmsis_network,
    estimate_weight_pool_network,
)
from repro.models import create_model
from repro.utils.tabulate import format_table
from repro.utils.units import human_bytes

NETWORKS = (
    ("TinyConv", "tinyconv", 100, 1),
    ("ResNet-s", "resnet_s", 10, 3),
    ("ResNet-10", "resnet10", 10, 3),
    ("ResNet-14", "resnet14", 10, 3),
    ("MobileNet-v2", "mobilenetv2", 100, 3),
)


def main() -> None:
    for device in (MC_LARGE, MC_SMALL):
        rows = []
        for name, registry_name, classes, channels in NETWORKS:
            model = create_model(registry_name, num_classes=classes, in_channels=channels, rng=0)
            input_shape = (channels, 32, 32)
            cmsis = estimate_cmsis_network(model, input_shape, device, name)
            pool = estimate_weight_pool_network(
                model, input_shape, device, BitSerialKernelConfig(pool_size=64), network_name=name
            )
            pool_min = estimate_weight_pool_network(
                model,
                input_shape,
                device,
                BitSerialKernelConfig(pool_size=64, activation_bitwidth=4),
                network_name=name,
            )
            rows.append(
                [
                    name,
                    human_bytes(cmsis.flash_bytes_needed),
                    "yes" if cmsis.fits_flash else "no",
                    None if not cmsis.fits_flash else round(cmsis.latency_seconds, 2),
                    human_bytes(pool.flash_bytes_needed),
                    "yes" if pool.fits_flash else "no",
                    None if not pool.fits_flash else round(pool.latency_seconds, 2),
                    None if not pool_min.fits_flash else round(pool_min.latency_seconds, 2),
                ]
            )
        title = (
            f"{device.name} ({device.part}): flash {human_bytes(device.flash_bytes)}, "
            f"SRAM {human_bytes(device.sram_bytes)}, {device.freq_mhz:.0f} MHz"
        )
        print(
            format_table(
                rows,
                headers=[
                    "network",
                    "int8 flash",
                    "int8 fits?",
                    "int8 latency (s)",
                    "pool flash",
                    "pool fits?",
                    "pool latency (s)",
                    "pool 4-bit latency (s)",
                ],
                title=title,
            )
        )
        print()


if __name__ == "__main__":
    main()
