"""Design-space exploration of the weight pool itself.

For a practitioner adapting the framework to a new network, the two most
important design choices are the pool size ``S`` and the group size ``N``
(paper Eq. 3–4, Tables 1 and 4).  This example shows how to use the library's
analysis API directly — without the experiment runners — to:

* cluster a trained network's weight vectors at several (S, N) points,
* measure the projection error and the projection-only accuracy,
* compute the resulting compression ratio and LUT storage,
* print the frontier so the deployer can pick a configuration.

Run with:  python examples/custom_pool_analysis.py
"""

from __future__ import annotations

from repro.analysis import evaluate_accuracy
from repro.core import (
    CompressionPolicy,
    analyze_model_storage,
    build_weight_pool,
    compress_model,
    lut_storage_bits,
)
from repro.core.weight_pool import collect_poolable_vectors
from repro.datasets import SyntheticCIFAR10, make_classification_split
from repro.models import create_model
from repro.nn import DataLoader, SGD, TrainConfig, Trainer
from repro.utils.tabulate import format_table


def main(seed: int = 0) -> None:
    train_ds, test_ds = make_classification_split(
        SyntheticCIFAR10, train_per_class=25, test_per_class=16, seed=seed, noise_std=0.5
    )
    train_loader = DataLoader(train_ds, batch_size=32, shuffle=True, rng=seed)
    test_loader = DataLoader(test_ds, batch_size=32)
    input_shape = train_ds.input_shape

    model = create_model("resnet_s_tiny", num_classes=10, in_channels=3, rng=seed)
    print("Training a reduced ResNet-s ...")
    Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9)).fit(
        train_loader, TrainConfig(epochs=3)
    )
    float_acc = evaluate_accuracy(model, test_loader)
    print(f"float accuracy: {float_acc:.1%}\n")

    rows = []
    for group_size in (4, 8, 16):
        policy = CompressionPolicy(group_size=group_size)
        try:
            vectors, _ = collect_poolable_vectors(model, input_shape, policy)
        except ValueError:
            continue  # no layer wide enough for this group size
        for pool_size in (16, 32, 64):
            pool = build_weight_pool(
                model, input_shape, pool_size=pool_size, policy=policy, seed=seed
            )
            projection_error = pool.quantization_error(vectors)
            compressed = compress_model(
                model, input_shape, pool=pool, policy=policy, seed=seed
            )
            compressed.model.eval()
            accuracy = evaluate_accuracy(compressed.model, test_loader)
            storage = analyze_model_storage(
                compressed.model, input_shape, pool=pool, index_bitwidth=8
            )
            rows.append(
                [
                    group_size,
                    pool_size,
                    f"{projection_error:.4f}",
                    f"{accuracy:.1%}",
                    f"{storage.compression_ratio:.2f}x",
                    f"{lut_storage_bits(group_size, pool_size, 8) / 8 / 1024:.1f} KiB",
                ]
            )

    print(
        format_table(
            rows,
            headers=[
                "group size N",
                "pool size S",
                "projection MSE",
                "accuracy (no fine-tune)",
                "compression ratio",
                "LUT storage",
            ],
            title="Weight-pool design space (projection-only, before fine-tuning)",
        )
    )
    print(
        "\nLarger groups compress more but lose accuracy; larger pools recover accuracy "
        "at the cost of LUT storage (Eq. 3-4)."
    )


if __name__ == "__main__":
    main()
