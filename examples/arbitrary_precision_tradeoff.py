"""Arbitrary-precision trade-off: accuracy vs. latency as activations shrink.

The defining property of the bit-serial weight-pool implementation is that the
activation bitwidth is a *runtime* knob: fewer bits means proportionally fewer
bit-serial iterations (paper §3.3, Figure 8, Table 6).  This example sweeps
the activation bitwidth of a compressed network and prints the
accuracy/latency frontier a deployer would use to pick an operating point.

Run with:  python examples/arbitrary_precision_tradeoff.py
"""

from __future__ import annotations

from repro.analysis import evaluate_accuracy
from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    compress_model,
    finetune_compressed_model,
)
from repro.datasets import SyntheticCIFAR10, make_classification_split
from repro.mcu import MC_LARGE, BitSerialKernelConfig, estimate_weight_pool_network
from repro.models import create_model
from repro.nn import DataLoader, SGD, TrainConfig, Trainer
from repro.utils.tabulate import format_table


def main(seed: int = 0) -> None:
    train_ds, test_ds = make_classification_split(
        SyntheticCIFAR10, train_per_class=30, test_per_class=20, seed=seed, noise_std=0.5
    )
    train_loader = DataLoader(train_ds, batch_size=32, shuffle=True, rng=seed)
    test_loader = DataLoader(test_ds, batch_size=32)
    input_shape = train_ds.input_shape

    print("Training and compressing a reduced ResNet-10 ...")
    model = create_model("resnet10_tiny", num_classes=10, in_channels=3, rng=seed)
    Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9)).fit(
        train_loader, TrainConfig(epochs=3)
    )
    float_acc = evaluate_accuracy(model, test_loader)

    result = compress_model(
        model, input_shape, pool_size=64, policy=CompressionPolicy(group_size=8), seed=seed
    )
    finetune_compressed_model(result.model, train_loader, epochs=2, lr=0.01)
    pool_acc = evaluate_accuracy(result.model, test_loader)
    print(f"float accuracy {float_acc:.1%}; weight-pool accuracy {pool_acc:.1%}")

    engine = BitSerialInferenceEngine(
        result.model,
        result.pool,
        EngineConfig(activation_bitwidth=8, lut_bitwidth=8, calibration_batches=2),
    )
    engine.calibrate(train_loader)

    rows = []
    for bits in (8, 7, 6, 5, 4, 3, 2):
        engine.set_activation_bitwidth(bits)
        accuracy = engine.evaluate(test_loader)
        latency = estimate_weight_pool_network(
            result.model,
            input_shape,
            MC_LARGE,
            BitSerialKernelConfig(pool_size=64, activation_bitwidth=bits),
        ).latency_seconds
        drop = (pool_acc - accuracy) * 100
        rows.append([bits, f"{accuracy:.1%}", f"{drop:+.1f} pp", f"{latency * 1000:.0f} ms"])

    print()
    print(
        format_table(
            rows,
            headers=["activation bits", "accuracy", "drop vs. float pool", "MC-large latency"],
            title="Runtime/accuracy trade-off from truncating the bit-serial execution",
        )
    )
    print("\nPick the smallest bitwidth whose drop is acceptable (<1 pp in the paper).")


if __name__ == "__main__":
    main()
