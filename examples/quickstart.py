"""Quickstart: compress a small CNN with weight pools and run it bit-serially.

This walks the full pipeline of the paper on a laptop-sized problem:

1. train a small CNN on a synthetic CIFAR-10-like task,
2. compress it with a shared z-dimension weight pool (paper §3),
3. fine-tune the pool-index assignment (paper Figure 2),
4. compile it through the pass-manager pipeline (calibrate → lower → graph
   passes → memory plan → autotune; the 8-bit build runs at level O3 and
   prints the pipeline report — passes run, ops before/after, arena bytes,
   autotune picks) and execute it with the bit-serial graph executor at
   8-bit and 4-bit activations (paper §3.1–3.3),
5. report compression ratio, accuracy, and estimated microcontroller latency.

Run with:  python examples/quickstart.py          (full demo)
           python examples/quickstart.py --fast   (CI smoke: tiny scale)
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import evaluate_accuracy
from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    analyze_model_storage,
    compress_model,
    finetune_compressed_model,
    format_pipeline_report,
)
from repro.datasets import SyntheticCIFAR10, make_classification_split
from repro.mcu import MC_LARGE, BitSerialKernelConfig, estimate_cmsis_network, estimate_weight_pool_network
from repro.models import create_model
from repro.nn import DataLoader, SGD, TrainConfig, Trainer
from repro.utils.tabulate import format_table


def main(seed: int = 0, fast: bool = False) -> None:
    rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ data
    per_class = (8, 6) if fast else (30, 20)
    train_ds, test_ds = make_classification_split(
        SyntheticCIFAR10,
        train_per_class=per_class[0],
        test_per_class=per_class[1],
        seed=seed,
        noise_std=0.5,
    )
    train_loader = DataLoader(train_ds, batch_size=32, shuffle=True, rng=seed)
    test_loader = DataLoader(test_ds, batch_size=32)
    input_shape = train_ds.input_shape

    # ------------------------------------------------------- 1. pretrain CNN
    model_name = "tinyconv_tiny" if fast else "tinyconv"
    model = create_model(model_name, num_classes=10, in_channels=3, rng=seed)
    print(f"Pretraining {model_name} on the synthetic CIFAR-10 substitute ...")
    trainer = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9))
    trainer.fit(train_loader, TrainConfig(epochs=1 if fast else 4))
    baseline_acc = evaluate_accuracy(model, test_loader)
    print(f"  float accuracy: {baseline_acc:.1%}")

    # ----------------------------------------------- 2. weight-pool compress
    print("Compressing with a 64-entry z-dimension weight pool (group size 8) ...")
    result = compress_model(
        model, input_shape, pool_size=64, policy=CompressionPolicy(group_size=8), seed=seed
    )
    print(f"  compressed layers: {result.compressed_layers}")
    print(f"  kept uncompressed: {result.skipped_layers}")

    # --------------------------------------------------------- 3. fine-tune
    print("Fine-tuning the index assignment (forward reassigns, backward updates) ...")
    finetune_compressed_model(result.model, train_loader, epochs=1 if fast else 2, lr=0.01)
    pool_acc = evaluate_accuracy(result.model, test_loader)
    print(f"  weight-pool accuracy: {pool_acc:.1%}")

    storage = analyze_model_storage(result.model, input_shape, pool=result.pool, index_bitwidth=8)
    print(
        f"  storage: {storage.compressed_bytes / 1024:.1f} KiB "
        f"(compression ratio {storage.compression_ratio:.2f}x, "
        f"LUT overhead {storage.lut_overhead:.1%})"
    )

    # --------------------------- 4. compile + execute the network program
    rows = []
    for act_bits in (8, 4):
        engine = BitSerialInferenceEngine(
            result.model,
            result.pool,
            EngineConfig(
                activation_bitwidth=act_bits,
                lut_bitwidth=8,
                calibration_batches=2,
                # The 8-bit deployment build compiles at the top pipeline
                # level: graph passes + arena plan + kernel autotuning.
                opt_level="O3" if act_bits == 8 else None,
            ),
        )
        engine.calibrate(train_loader)
        program = engine.compile()
        if act_bits == 8:
            print(
                f"  compiled program: {len(program.ops)} ops "
                f"({program.count('bitserial_conv') + program.count('bitserial_linear')}"
                f" bit-serial, {program.count('requantize')} requantize-fused, "
                f"{program.count('batchnorm')} BN left unfolded)"
            )
            print(format_pipeline_report(program))
        acc = engine.evaluate(test_loader)
        wp_latency = estimate_weight_pool_network(
            result.model,
            input_shape,
            MC_LARGE,
            BitSerialKernelConfig(pool_size=64, activation_bitwidth=act_bits),
        ).latency_seconds
        rows.append([f"{act_bits}-bit activations", f"{acc:.1%}", f"{wp_latency:.2f} s"])

    cmsis_latency = estimate_cmsis_network(model, input_shape, MC_LARGE).latency_seconds
    rows.append(["CMSIS int8 baseline", f"{baseline_acc:.1%}", f"{cmsis_latency:.2f} s"])

    # ------------------------------------------------------------- 5. report
    print()
    print(
        format_table(
            rows,
            headers=["configuration", "accuracy", "estimated MC-large latency"],
            title="Bit-serial weight-pool deployment summary",
        )
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="tiny-scale smoke run (used by CI): smaller model, data, epochs",
    )
    args = parser.parse_args()
    main(seed=args.seed, fast=args.fast)
