"""Thin setup.py shim.

The offline environment used for the reproduction has no `wheel` package, so
PEP 660 editable installs (which call ``bdist_wheel``) fail.  Keeping a
classic ``setup.py`` lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (or ``python setup.py develop``) perform a legacy editable
install.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
