"""Serving throughput benchmark: dynamic batching vs. single-sample execution.

Drives ``repro.serve.InferenceServer`` on the ResNet-14 / CIFAR-10 preset
with concurrent closed-loop clients issuing single-sample ``predict`` calls
— the request shape of an online model server — and sweeps the offered load
across dynamic-batching policies (and, with enough cores, the process worker
pool), recording per-policy p50/p99 latency and images/s next to two
reference points:

* **sequential** — batch-1 ``Executor.run`` calls in a loop (what serving
  single requests without a batcher costs);
* **executor_batch** — raw batched ``Executor.evaluate`` over the test set
  (the offline upper bound a single executor can reach).

The asserted speedup over sequential execution is hardware-aware, because
the two levers scale differently:

* **batch coalescing** amortizes per-op dispatch and bit-encode setup — it
  always helps, but is bounded by ``executor_batch / sequential`` (~1.2× for
  this kernel, whose per-pixel gather work is batch-size-independent);
* **process workers** multiply throughput by the core count — on a ≥4-core
  machine the combination clears the headline **3×** target.

So the default target is 3.0 with ≥4 cores, else 1.0 (the batcher must at
least match sequential throughput while it is adding batching value —
``mean_batch`` and the latency distribution are recorded to show it).
``REPRO_SERVE_SPEEDUP_TARGET`` overrides either default.  The full sweep is
written to ``BENCH_serve.json`` at the repository root.
``REPRO_SERVE_BENCH_FAST=1`` (the CI smoke mode) shrinks the image count
and the policy sweep.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from conftest import bench_scale  # noqa: F401  (scale fixture)

from repro.core import EngineConfig
from repro.experiments.common import calibrated_engine, compress_and_finetune, pretrained_model
from repro.experiments.common import test_loader_for as held_out_loader_for
from repro.serve import (
    AdmissionPolicy,
    AdmissionRejected,
    AutoscalePolicy,
    BatchPolicy,
    DeadlineExceeded,
    FaultPlan,
    InferenceServer,
    ModelRepository,
    QueueFull,
    RetryPolicy,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"
CPUS = os.cpu_count() or 1
SPEEDUP_TARGET = float(
    os.environ.get("REPRO_SERVE_SPEEDUP_TARGET", "3.0" if CPUS >= 4 else "1.0")
)
FAST = os.environ.get("REPRO_SERVE_BENCH_FAST", "") not in ("", "0")

CLIENTS = 8

# The compiled engine and held-out samples, cached per scale so the
# throughput and overload benchmarks share one compile.
_PREPARED = {}


def _prepared(scale):
    if scale.name not in _PREPARED:
        pretrained = pretrained_model("resnet14", "cifar10", scale, seed=0)
        result, _ = compress_and_finetune(pretrained, scale, finetune=False, seed=0)
        engine = calibrated_engine(
            result,
            pretrained,
            scale,
            config=EngineConfig(
                lut_bitwidth=8, calibration_batches=scale.calibration_batches
            ),
        )
        loader = held_out_loader_for(pretrained, scale)
        samples, targets = [], []
        for inputs, batch_targets in loader:
            samples.extend(np.asarray(inputs))
            targets.extend(np.asarray(batch_targets))
        if FAST:
            samples, targets = samples[:64], targets[:64]
        _PREPARED[scale.name] = (engine, np.stack(samples), np.asarray(targets))
    return _PREPARED[scale.name]


def _merge_bench_record(update):
    """Read-modify-write ``BENCH_serve.json``: the throughput and overload
    benchmarks each own their keys, whichever order they run in."""
    record = {}
    if BENCH_PATH.exists():
        try:
            record = json.loads(BENCH_PATH.read_text())
        except ValueError:
            record = {}
    record.update(update)
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _policy_sweep():
    """(label, policy, worker_mode, workers) rows of the offered-load sweep."""
    rows = [
        ("no_coalescing", BatchPolicy(max_batch_size=1, max_delay_ms=0.0), "thread", 1),
        ("batch8_2ms", BatchPolicy(max_batch_size=8, max_delay_ms=2.0), "thread", 1),
        ("batch16_3ms", BatchPolicy(max_batch_size=16, max_delay_ms=3.0), "thread", 1),
    ]
    if CPUS >= 2:
        workers = min(CPUS, 4)
        rows.append(
            (
                f"batch16_3ms_{workers}procs",
                BatchPolicy(max_batch_size=16, max_delay_ms=3.0),
                "process",
                workers,
            )
        )
    if FAST:
        # CI smoke: keep one coalescing policy per worker mode, so the
        # process-worker path (spawn, artifact load, IPC) stays exercised.
        keep = {"batch16_3ms"} | {row[0] for row in rows if row[2] == "process"}
        rows = [row for row in rows if row[0] in keep]
    return rows


def _closed_loop_clients(server, name, samples, num_clients):
    """``num_clients`` threads issue blocking single-sample predicts; returns
    (labels, wall_seconds)."""
    labels = np.empty(len(samples), dtype=np.int64)
    cursor = iter(range(len(samples)))
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            labels[index] = int(np.argmax(server.predict(name, samples[index], timeout=300.0)))

    threads = [threading.Thread(target=client, daemon=True) for _ in range(num_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return labels, time.perf_counter() - start


def test_serve_throughput(scale, tmp_path):
    engine, samples, targets = _prepared(scale)
    images = len(samples)

    repository = ModelRepository(tmp_path / "repo")
    repository.publish(engine.compile(), "resnet14")

    # -- reference points -----------------------------------------------------
    executor = engine._executor()
    executor.run(samples[:2])  # warm-up: compile the kernel plans
    start = time.perf_counter()
    sequential_labels = np.array(
        [int(np.argmax(executor.run(sample[None]))) for sample in samples]
    )
    sequential_s = time.perf_counter() - start
    sequential_acc = float((sequential_labels == targets).mean())

    start = time.perf_counter()
    batch_labels = np.argmax(executor.run(samples), axis=1)
    executor_batch_s = time.perf_counter() - start
    executor_batch_acc = float((batch_labels == targets).mean())

    # -- offered-load sweep over batching policies ------------------------------
    sweep = []
    for label, policy, worker_mode, workers in _policy_sweep():
        server = InferenceServer(
            repository, policy=policy, workers=workers, worker_mode=worker_mode
        )
        try:
            # Warm-up outside the timed window: builds the pipeline and
            # compiles each worker's plans.
            warm_count = max(2 * policy.max_batch_size, 2 * workers)
            warm = [
                server.predict_async("resnet14", samples[i % images])
                for i in range(warm_count)
            ]
            for future in warm:
                future.result(timeout=600.0)
            labels, seconds = _closed_loop_clients(server, "resnet14", samples, CLIENTS)
            stats = server.stats("resnet14")
        finally:
            server.close()
        sweep.append(
            {
                "policy": label,
                "max_batch_size": policy.max_batch_size,
                "max_delay_ms": policy.max_delay_ms,
                "worker_mode": worker_mode,
                "workers": workers,
                "clients": CLIENTS,
                "images_per_second": round(images / seconds, 2),
                "p50_ms": stats["latency"]["p50_ms"],
                "p99_ms": stats["latency"]["p99_ms"],
                "mean_batch": stats["batches"]["mean_size"],
                "max_queue_depth": stats["queue"]["max_depth"],
                "accuracy": round(float((labels == targets).mean()), 4),
                "label_flips_vs_sequential": int((labels != sequential_labels).sum()),
            }
        )

    best = max(sweep, key=lambda row: row["images_per_second"])
    speedup = best["images_per_second"] / (images / sequential_s)
    record = {
        "benchmark": "serve_throughput",
        "network": "resnet14",
        "dataset": "cifar10",
        "scale": scale.name,
        "fast_mode": FAST,
        "cpus": CPUS,
        "images": images,
        "sequential_images_per_second": round(images / sequential_s, 2),
        "sequential_accuracy": round(sequential_acc, 4),
        "executor_batch_images_per_second": round(images / executor_batch_s, 2),
        "executor_batch_accuracy": round(executor_batch_acc, 4),
        "policies": sweep,
        "best_policy": best["policy"],
        "speedup_vs_sequential": round(speedup, 2),
        "speedup_target": SPEEDUP_TARGET,
    }
    record = _merge_bench_record(record)
    print()
    print(json.dumps(record, indent=2))

    # Equal accuracy: micro-batching is per-sample exact for every compiled
    # op; only the float stem conv's BLAS reduction order varies with batch
    # size, so at most a prediction on a rounding boundary may flip.
    for row in sweep:
        assert abs(row["accuracy"] - sequential_acc) <= 1.0 / images + 1e-12, (
            f"policy {row['policy']} changed accuracy: "
            f"{row['accuracy']} vs sequential {sequential_acc}"
        )
    # The batcher must actually coalesce under concurrent load ...
    assert any(row["mean_batch"] > 1.5 for row in sweep), (
        "no policy formed real batches under 8 concurrent clients"
    )
    # ... and clear the hardware-aware throughput target.
    assert speedup >= SPEEDUP_TARGET, (
        f"dynamic batcher sustains only {speedup:.2f}x the sequential "
        f"single-sample throughput (target {SPEEDUP_TARGET}x on {CPUS} cpus)"
    )


# ---------------------------------------------------------------------------
# Overload sweep: goodput / shed rate / p99 across offered load
# ---------------------------------------------------------------------------
OVERLOAD_FACTORS = (0.5, 1.0, 2.0, 4.0)
OVERLOAD_WINDOW_S = 1.5 if FAST else 3.0
OVERLOAD_POLICY = BatchPolicy(max_batch_size=16, max_delay_ms=3.0)


def _open_loop(server, name, samples, rate_rps, duration_s, timeout_ms):
    """Offer ``rate_rps`` of single-sample requests for ``duration_s``
    regardless of completions (open loop: arrivals do not slow down when the
    server does), then settle every future.  Returns the outcome counts,
    completion latencies, and (sample index, predicted label) pairs."""
    interval = 1.0 / rate_rps
    total = max(1, int(rate_rps * duration_s))
    outcomes = {"offered": total, "ok": 0, "shed": 0, "deadline": 0, "error": 0}
    inflight = []
    start = time.perf_counter()
    for i in range(total):
        due = start + i * interval
        now = time.perf_counter()
        if due > now:
            time.sleep(due - now)
        index = i % len(samples)
        try:
            future = server.predict_async(
                name, samples[index], timeout_ms=timeout_ms
            )
        except (AdmissionRejected, QueueFull):
            outcomes["shed"] += 1
            continue
        except DeadlineExceeded:
            outcomes["deadline"] += 1
            continue
        inflight.append((index, time.perf_counter(), future))
    latencies, labels = [], []
    for index, submitted, future in inflight:
        try:
            output = future.result(timeout=300.0)
        except DeadlineExceeded:
            outcomes["deadline"] += 1
            continue
        except Exception:
            outcomes["error"] += 1
            continue
        outcomes["ok"] += 1
        latencies.append(time.perf_counter() - submitted)
        labels.append((index, int(np.argmax(output))))
    wall = time.perf_counter() - start
    return outcomes, latencies, labels, wall


def _overload_row(factor, rate, outcomes, latencies, wall):
    offered = outcomes["offered"]
    percentiles = (
        np.percentile(np.asarray(latencies) * 1e3, [50, 99]) if latencies else (0.0, 0.0)
    )
    return {
        "offered_factor": factor,
        "offered_rps": round(rate, 2),
        "offered": offered,
        "goodput_rps": round(outcomes["ok"] / wall, 2),
        "completed": outcomes["ok"],
        "shed": outcomes["shed"],
        "shed_rate": round(outcomes["shed"] / offered, 4),
        "deadline_expired": outcomes["deadline"],
        "errors": outcomes["error"],
        "p50_ms": round(float(percentiles[0]), 3),
        "p99_ms": round(float(percentiles[1]), 3),
    }


def test_serve_overload_sweep(scale, tmp_path):
    """Offered load at 0.5x-4x capacity: goodput must plateau (shedding,
    not collapsing), and an injected worker crash must degrade gracefully —
    retried batches recover and predictions match the never-injected path."""
    engine, samples, _ = _prepared(scale)
    repository = ModelRepository(tmp_path / "repo")
    repository.publish(engine.compile(), "resnet14")
    admission = AdmissionPolicy(max_queue_depth=4 * OVERLOAD_POLICY.max_batch_size)
    deadline_ms = 5_000.0

    def build_server(fault_plan=None):
        return InferenceServer(
            repository,
            policy=OVERLOAD_POLICY,
            admission=admission,
            retry=RetryPolicy(max_retries=2, backoff_base_s=0.02, seed=0),
            fault_plan=fault_plan,
        )

    # -- capacity: a short closed-loop burst at the sweep's own policy ----------
    server = build_server()
    try:
        warm = [server.predict_async("resnet14", samples[i % len(samples)])
                for i in range(2 * OVERLOAD_POLICY.max_batch_size)]
        for future in warm:
            future.result(timeout=600.0)
        probe = samples[: min(len(samples), 96)]
        _, seconds = _closed_loop_clients(server, "resnet14", probe, CLIENTS)
        capacity_rps = len(probe) / seconds
    finally:
        server.close()

    # -- offered-load sweep ------------------------------------------------------
    sweep = []
    clean_labels = {}
    for factor in OVERLOAD_FACTORS:
        server = build_server()
        try:
            warm = [server.predict_async("resnet14", samples[i % len(samples)])
                    for i in range(OVERLOAD_POLICY.max_batch_size)]
            for future in warm:
                future.result(timeout=600.0)
            outcomes, latencies, labels, wall = _open_loop(
                server, "resnet14", samples, capacity_rps * factor,
                OVERLOAD_WINDOW_S, deadline_ms,
            )
            snap = server.stats("resnet14")["resilience"]
        finally:
            server.close()
        if factor == 1.0:
            clean_labels = dict(labels)
        row = _overload_row(factor, capacity_rps * factor, outcomes, latencies, wall)
        row["stats_shed"] = snap["shed"]
        sweep.append(row)

    # -- crash injection at 1x: graceful degradation and identical answers ------
    crash_plan = FaultPlan.crash_on_batch(2, worker=0)
    server = build_server(fault_plan=crash_plan)
    try:
        outcomes, latencies, labels, wall = _open_loop(
            server, "resnet14", samples, capacity_rps, OVERLOAD_WINDOW_S, deadline_ms
        )
        snap = server.stats("resnet14")["resilience"]
    finally:
        server.close()
    crash_row = _overload_row(1.0, capacity_rps, outcomes, latencies, wall)
    crash_row["retries"] = snap["retries"]
    crash_row["breaker_transitions"] = snap["breaker_transitions"]

    record = _merge_bench_record(
        {
            "overload": {
                "capacity_rps": round(capacity_rps, 2),
                "deadline_ms": deadline_ms,
                "window_s": OVERLOAD_WINDOW_S,
                "admission_max_queue_depth": admission.max_queue_depth,
                "sweep": sweep,
                "crash_injected_1x": crash_row,
            }
        }
    )
    print()
    print(json.dumps(record["overload"], indent=2))

    by_factor = {row["offered_factor"]: row for row in sweep}
    # Underload is served nearly loss-free.
    assert by_factor[0.5]["shed_rate"] <= 0.05, "shedding while underloaded"
    assert by_factor[0.5]["errors"] == 0 and by_factor[1.0]["errors"] == 0
    # Saturation is graceful: past capacity the server sheds instead of
    # collapsing — goodput holds a plateau within noise of the 1x point.
    for factor in (2.0, 4.0):
        row = by_factor[factor]
        assert row["goodput_rps"] >= 0.5 * by_factor[1.0]["goodput_rps"], (
            f"goodput collapsed under {factor}x offered load: "
            f"{row['goodput_rps']} vs {by_factor[1.0]['goodput_rps']} at 1x"
        )
    # The overload is absorbed by explicit, bounded behaviour: every offered
    # request is accounted for — nothing vanished into a hung future.
    for row in sweep + [crash_row]:
        accounted = (
            row["completed"] + row["shed"] + row["deadline_expired"] + row["errors"]
        )
        assert accounted == row["offered"], (
            f"{row['offered_factor']}x: {accounted} settled of {row['offered']} offered"
        )
    # 4x offered load sheds a visible fraction (the plateau is real).
    assert by_factor[4.0]["shed_rate"] > 0.05, "4x overload shed nothing"
    # The injected crash was retried, recovered within the window, and the
    # answers are bit-identical to the never-injected path.
    assert crash_row["retries"] >= 1, "the injected crash was never retried"
    assert crash_row["errors"] == 0, "crash retry did not recover every batch"
    assert crash_row["completed"] > 0
    mismatches = [
        index for index, label in labels
        if index in clean_labels and clean_labels[index] != label
    ]
    assert not mismatches, (
        f"crash-injected predictions diverged from the clean path: {mismatches[:5]}"
    )


# ---------------------------------------------------------------------------
# Autoscale sweep: static pool vs. the control plane under the same load
# ---------------------------------------------------------------------------
AUTOSCALE_FACTORS = (1.0, 2.0, 4.0)


def _open_loop_horizon(server, name, samples, rate_rps, duration_s, horizon_s):
    """Open-loop arrivals for ``duration_s``, goodput judged over a fixed
    ``horizon_s`` shared by every configuration: completions are timestamped
    by done-callbacks, and only those inside the horizon count.  A server
    that turned a request away cannot earn it back by finishing its shorter
    backlog early and idling — which is exactly the spike-absorption value
    an autoscaled admission bound buys.  Every future still settles, so the
    offered/shed/ok accounting stays exact."""
    interval = 1.0 / rate_rps
    total = max(1, int(rate_rps * duration_s))
    outcomes = {"offered": total, "ok": 0, "shed": 0, "deadline": 0, "error": 0}
    done_at = []
    done_lock = threading.Lock()
    inflight = []
    start = time.perf_counter()

    def stamp(future):
        if future.exception() is None:
            now = time.perf_counter()
            with done_lock:
                done_at.append(now - start)

    for i in range(total):
        due = start + i * interval
        now = time.perf_counter()
        if due > now:
            time.sleep(due - now)
        try:
            future = server.predict_async(name, samples[i % len(samples)])
        except (AdmissionRejected, QueueFull):
            outcomes["shed"] += 1
            continue
        future.add_done_callback(stamp)
        inflight.append((time.perf_counter(), future))
    latencies = []
    for submitted, future in inflight:
        try:
            future.result(timeout=300.0)
        except Exception:
            outcomes["error"] += 1
            continue
        outcomes["ok"] += 1
        latencies.append(time.perf_counter() - submitted)
    with done_lock:
        completed_in_horizon = sum(1 for t in done_at if t <= horizon_s)
    return outcomes, latencies, completed_in_horizon


def test_serve_autoscale_sweep(scale, tmp_path):
    """The same offered-load protocol as the overload sweep, run twice: a
    static single-worker pool vs. an autoscaled server (same admission
    policy, same batching).  The autoscaler reacts to the measured backlog
    by growing the pool — and, with ``scale_queue_bound``, its admission
    bound — so at 4x offered load it sheds less, and over a fixed horizon
    (arrival window + enough drain for the *scaled* queue) completes more:
    its goodput must meet or beat the static pool on the same container.
    Every scaler decision is recorded into ``BENCH_serve.json`` for audit."""
    engine, samples, _ = _prepared(scale)
    repository = ModelRepository(tmp_path / "repo")
    repository.publish(engine.compile(), "resnet14")
    admission = AdmissionPolicy(max_queue_depth=4 * OVERLOAD_POLICY.max_batch_size)
    max_workers = max(2, min(CPUS, 4))
    autoscale = AutoscalePolicy(
        min_workers=1,
        max_workers=max_workers,
        tick_interval_s=0.05,
        backlog_high_per_worker=8.0,
        backlog_low_per_worker=1.0,
        up_cooldown_ticks=2,
        down_cooldown_ticks=4,
        down_hysteresis_ticks=4,
    )

    def build_server(autoscale_policy):
        return InferenceServer(
            repository,
            policy=OVERLOAD_POLICY,
            admission=admission,
            autoscale=autoscale_policy,
        )

    # -- capacity: the static pool's closed-loop burst rate ---------------------
    server = build_server(None)
    try:
        warm = [server.predict_async("resnet14", samples[i % len(samples)])
                for i in range(2 * OVERLOAD_POLICY.max_batch_size)]
        for future in warm:
            future.result(timeout=600.0)
        probe = samples[: min(len(samples), 96)]
        _, seconds = _closed_loop_clients(server, "resnet14", probe, CLIENTS)
        capacity_rps = len(probe) / seconds
    finally:
        server.close()

    # The shared measurement horizon: the arrival window plus enough drain
    # time for the *deepest* queue any configuration can legally hold, so
    # neither mode's clock stops while it still has admitted work.
    horizon_s = OVERLOAD_WINDOW_S + 1.3 * (
        autoscale.max_workers * admission.max_queue_depth
    ) / capacity_rps

    # -- the sweep, static then autoscaled, same offered trace ------------------
    results = {}
    for mode, policy in (("static", None), ("autoscaled", autoscale)):
        rows = []
        for factor in AUTOSCALE_FACTORS:
            server = build_server(policy)
            try:
                warm = [server.predict_async("resnet14", samples[i % len(samples)])
                        for i in range(OVERLOAD_POLICY.max_batch_size)]
                for future in warm:
                    future.result(timeout=600.0)
                outcomes, latencies, in_horizon = _open_loop_horizon(
                    server, "resnet14", samples, capacity_rps * factor,
                    OVERLOAD_WINDOW_S, horizon_s,
                )
                stats = server.stats("resnet14")
                control = server.control_plane()
            finally:
                server.close()
            rate = capacity_rps * factor
            row = _overload_row(factor, rate, outcomes, latencies, horizon_s)
            row["goodput_rps"] = round(in_horizon / horizon_s, 2)
            row["completed_in_horizon"] = in_horizon
            row["workers_final"] = stats["workers"]
            row["queue_capacity_final"] = stats["queue"]["capacity"]
            if control.get("autoscaler"):
                snap = control["autoscaler"]
                row["scaler_decisions"] = snap["decisions"]
                row["scaler_ticks"] = snap["ticks"]
            rows.append(row)
        results[mode] = rows

    record = _merge_bench_record(
        {
            "autoscale": {
                "capacity_rps": round(capacity_rps, 2),
                "window_s": OVERLOAD_WINDOW_S,
                "horizon_s": round(horizon_s, 2),
                "admission_max_queue_depth": admission.max_queue_depth,
                "policy": {
                    "min_workers": autoscale.min_workers,
                    "max_workers": autoscale.max_workers,
                    "tick_interval_s": autoscale.tick_interval_s,
                    "backlog_high_per_worker": autoscale.backlog_high_per_worker,
                    "backlog_low_per_worker": autoscale.backlog_low_per_worker,
                    "scale_queue_bound": autoscale.scale_queue_bound,
                },
                "static": results["static"],
                "autoscaled": results["autoscaled"],
            }
        }
    )
    print()
    print(json.dumps(record["autoscale"], indent=2))

    static_by = {row["offered_factor"]: row for row in results["static"]}
    auto_by = {row["offered_factor"]: row for row in results["autoscaled"]}
    # Nothing vanished: every offered request settled one way or another.
    for row in results["static"] + results["autoscaled"]:
        accounted = (
            row["completed"] + row["shed"] + row["deadline_expired"] + row["errors"]
        )
        assert accounted == row["offered"], (
            f"{row['offered_factor']}x: {accounted} settled of {row['offered']}"
        )
    # The scaler actually reacted to the 4x backlog: scale-ups were decided,
    # the pool grew past one worker, and the decisions are in the record.
    decisions = auto_by[4.0].get("scaler_decisions", [])
    assert any(d["action"] == "scale_up" for d in decisions), (
        f"no scale-up decided under 4x offered load: {decisions}"
    )
    assert auto_by[4.0]["workers_final"] > 1
    # Scaling translated into admission capacity: fewer sheds than static...
    assert auto_by[4.0]["shed_rate"] < static_by[4.0]["shed_rate"], (
        "autoscaled server shed no less than the static pool at 4x"
    )
    assert auto_by[4.0]["completed"] > static_by[4.0]["completed"]
    # ... and at least the static pool's goodput on this same container
    # (strictly more on multi-core machines, where the grown pool adds
    # real service rate on top of the deeper admission bound).
    assert auto_by[4.0]["goodput_rps"] >= static_by[4.0]["goodput_rps"], (
        f"autoscaled goodput {auto_by[4.0]['goodput_rps']} rps under 4x "
        f"offered load lost to the static pool's {static_by[4.0]['goodput_rps']}"
    )


def test_serve_throughput_scale_fixture(scale):
    """The benchmark honours REPRO_BENCH_SCALE like every other benchmark."""
    assert scale.name == bench_scale().name
