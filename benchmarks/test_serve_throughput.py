"""Serving throughput benchmark: dynamic batching vs. single-sample execution.

Drives ``repro.serve.InferenceServer`` on the ResNet-14 / CIFAR-10 preset
with concurrent closed-loop clients issuing single-sample ``predict`` calls
— the request shape of an online model server — and sweeps the offered load
across dynamic-batching policies (and, with enough cores, the process worker
pool), recording per-policy p50/p99 latency and images/s next to two
reference points:

* **sequential** — batch-1 ``Executor.run`` calls in a loop (what serving
  single requests without a batcher costs);
* **executor_batch** — raw batched ``Executor.evaluate`` over the test set
  (the offline upper bound a single executor can reach).

The asserted speedup over sequential execution is hardware-aware, because
the two levers scale differently:

* **batch coalescing** amortizes per-op dispatch and bit-encode setup — it
  always helps, but is bounded by ``executor_batch / sequential`` (~1.2× for
  this kernel, whose per-pixel gather work is batch-size-independent);
* **process workers** multiply throughput by the core count — on a ≥4-core
  machine the combination clears the headline **3×** target.

So the default target is 3.0 with ≥4 cores, else 1.0 (the batcher must at
least match sequential throughput while it is adding batching value —
``mean_batch`` and the latency distribution are recorded to show it).
``REPRO_SERVE_SPEEDUP_TARGET`` overrides either default.  The full sweep is
written to ``BENCH_serve.json`` at the repository root.
``REPRO_SERVE_BENCH_FAST=1`` (the CI smoke mode) shrinks the image count
and the policy sweep.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from conftest import bench_scale  # noqa: F401  (scale fixture)

from repro.core import EngineConfig
from repro.experiments.common import calibrated_engine, compress_and_finetune, pretrained_model
from repro.experiments.common import test_loader_for as held_out_loader_for
from repro.serve import BatchPolicy, InferenceServer, ModelRepository

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"
CPUS = os.cpu_count() or 1
SPEEDUP_TARGET = float(
    os.environ.get("REPRO_SERVE_SPEEDUP_TARGET", "3.0" if CPUS >= 4 else "1.0")
)
FAST = os.environ.get("REPRO_SERVE_BENCH_FAST", "") not in ("", "0")

CLIENTS = 8


def _policy_sweep():
    """(label, policy, worker_mode, workers) rows of the offered-load sweep."""
    rows = [
        ("no_coalescing", BatchPolicy(max_batch_size=1, max_delay_ms=0.0), "thread", 1),
        ("batch8_2ms", BatchPolicy(max_batch_size=8, max_delay_ms=2.0), "thread", 1),
        ("batch16_3ms", BatchPolicy(max_batch_size=16, max_delay_ms=3.0), "thread", 1),
    ]
    if CPUS >= 2:
        workers = min(CPUS, 4)
        rows.append(
            (
                f"batch16_3ms_{workers}procs",
                BatchPolicy(max_batch_size=16, max_delay_ms=3.0),
                "process",
                workers,
            )
        )
    if FAST:
        # CI smoke: keep one coalescing policy per worker mode, so the
        # process-worker path (spawn, artifact load, IPC) stays exercised.
        keep = {"batch16_3ms"} | {row[0] for row in rows if row[2] == "process"}
        rows = [row for row in rows if row[0] in keep]
    return rows


def _closed_loop_clients(server, name, samples, num_clients):
    """``num_clients`` threads issue blocking single-sample predicts; returns
    (labels, wall_seconds)."""
    labels = np.empty(len(samples), dtype=np.int64)
    cursor = iter(range(len(samples)))
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            labels[index] = int(np.argmax(server.predict(name, samples[index], timeout=300.0)))

    threads = [threading.Thread(target=client, daemon=True) for _ in range(num_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return labels, time.perf_counter() - start


def test_serve_throughput(scale, tmp_path):
    pretrained = pretrained_model("resnet14", "cifar10", scale, seed=0)
    result, _ = compress_and_finetune(pretrained, scale, finetune=False, seed=0)
    engine = calibrated_engine(
        result,
        pretrained,
        scale,
        config=EngineConfig(lut_bitwidth=8, calibration_batches=scale.calibration_batches),
    )
    loader = held_out_loader_for(pretrained, scale)
    samples, targets = [], []
    for inputs, batch_targets in loader:
        samples.extend(np.asarray(inputs))
        targets.extend(np.asarray(batch_targets))
    if FAST:
        samples, targets = samples[:64], targets[:64]
    samples = np.stack(samples)
    targets = np.asarray(targets)
    images = len(samples)

    repository = ModelRepository(tmp_path / "repo")
    repository.publish(engine.compile(), "resnet14")

    # -- reference points -----------------------------------------------------
    executor = engine._executor()
    executor.run(samples[:2])  # warm-up: compile the kernel plans
    start = time.perf_counter()
    sequential_labels = np.array(
        [int(np.argmax(executor.run(sample[None]))) for sample in samples]
    )
    sequential_s = time.perf_counter() - start
    sequential_acc = float((sequential_labels == targets).mean())

    start = time.perf_counter()
    batch_labels = np.argmax(executor.run(samples), axis=1)
    executor_batch_s = time.perf_counter() - start
    executor_batch_acc = float((batch_labels == targets).mean())

    # -- offered-load sweep over batching policies ------------------------------
    sweep = []
    for label, policy, worker_mode, workers in _policy_sweep():
        server = InferenceServer(
            repository, policy=policy, workers=workers, worker_mode=worker_mode
        )
        try:
            # Warm-up outside the timed window: builds the pipeline and
            # compiles each worker's plans.
            warm_count = max(2 * policy.max_batch_size, 2 * workers)
            warm = [
                server.predict_async("resnet14", samples[i % images])
                for i in range(warm_count)
            ]
            for future in warm:
                future.result(timeout=600.0)
            labels, seconds = _closed_loop_clients(server, "resnet14", samples, CLIENTS)
            stats = server.stats("resnet14")
        finally:
            server.close()
        sweep.append(
            {
                "policy": label,
                "max_batch_size": policy.max_batch_size,
                "max_delay_ms": policy.max_delay_ms,
                "worker_mode": worker_mode,
                "workers": workers,
                "clients": CLIENTS,
                "images_per_second": round(images / seconds, 2),
                "p50_ms": stats["latency"]["p50_ms"],
                "p99_ms": stats["latency"]["p99_ms"],
                "mean_batch": stats["batches"]["mean_size"],
                "max_queue_depth": stats["queue"]["max_depth"],
                "accuracy": round(float((labels == targets).mean()), 4),
                "label_flips_vs_sequential": int((labels != sequential_labels).sum()),
            }
        )

    best = max(sweep, key=lambda row: row["images_per_second"])
    speedup = best["images_per_second"] / (images / sequential_s)
    record = {
        "benchmark": "serve_throughput",
        "network": "resnet14",
        "dataset": "cifar10",
        "scale": scale.name,
        "fast_mode": FAST,
        "cpus": CPUS,
        "images": images,
        "sequential_images_per_second": round(images / sequential_s, 2),
        "sequential_accuracy": round(sequential_acc, 4),
        "executor_batch_images_per_second": round(images / executor_batch_s, 2),
        "executor_batch_accuracy": round(executor_batch_acc, 4),
        "policies": sweep,
        "best_policy": best["policy"],
        "speedup_vs_sequential": round(speedup, 2),
        "speedup_target": SPEEDUP_TARGET,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))

    # Equal accuracy: micro-batching is per-sample exact for every compiled
    # op; only the float stem conv's BLAS reduction order varies with batch
    # size, so at most a prediction on a rounding boundary may flip.
    for row in sweep:
        assert abs(row["accuracy"] - sequential_acc) <= 1.0 / images + 1e-12, (
            f"policy {row['policy']} changed accuracy: "
            f"{row['accuracy']} vs sequential {sequential_acc}"
        )
    # The batcher must actually coalesce under concurrent load ...
    assert any(row["mean_batch"] > 1.5 for row in sweep), (
        "no policy formed real batches under 8 concurrent clients"
    )
    # ... and clear the hardware-aware throughput target.
    assert speedup >= SPEEDUP_TARGET, (
        f"dynamic batcher sustains only {speedup:.2f}x the sequential "
        f"single-sample throughput (target {SPEEDUP_TARGET}x on {CPUS} cpus)"
    )


def test_serve_throughput_scale_fixture(scale):
    """The benchmark honours REPRO_BENCH_SCALE like every other benchmark."""
    assert scale.name == bench_scale().name
