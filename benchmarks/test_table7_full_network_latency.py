"""Benchmark for Table 7: full-network latency on MC-large and MC-small."""

from conftest import run_experiment

from repro.experiments import table7


def test_table7_full_network_latency(benchmark):
    result = run_experiment(benchmark, table7.run)
    large = {row[1]: row for row in result.rows if row[0] == "MC-large"}
    small = {row[1]: row for row in result.rows if row[0] == "MC-small"}
    headers = list(result.headers)
    cmsis = headers.index("CMSIS (s)")
    p64_8 = headers.index("64-8 (s)")
    p64_min = headers.index("64-min (s)")
    p32_8 = headers.index("32-8 (s)")

    # Paper shape 1: ResNet-14 and MobileNet-v2 do not fit MC-large flash under
    # CMSIS but do with weight pools.
    for name in ("ResNet-14", "MobileNet-v2"):
        assert large[name][cmsis] is None
        assert large[name][p64_8] is not None

    # Paper shape 2: for networks that fit, the weight-pool deployment at the
    # minimum bitwidth is clearly faster than CMSIS, and speedups grow with
    # network size (ResNet-10 > TinyConv).
    def speedup(row, column):
        return row[cmsis] / row[column]

    assert speedup(large["ResNet-10"], p64_min) > 2.0
    assert speedup(large["ResNet-10"], p64_min) > speedup(large["TinyConv"], p64_min)
    assert speedup(large["ResNet-10"], p64_8) > 1.2

    # Paper shape 3: the smaller pool (32) is never slower than pool 64.
    for row in large.values():
        if row[p64_8] is not None and row[p32_8] is not None:
            assert row[p32_8] <= row[p64_8] + 1e-9

    # Paper shape 4: MC-small only carries TinyConv and ResNet-s, and is slower
    # than MC-large for the same network.
    assert set(small) == {"TinyConv", "ResNet-s"}
    for name, row in small.items():
        if row[p64_8] is not None and large[name][p64_8] is not None:
            assert row[p64_8] > large[name][p64_8]
