"""Benchmark for Figure 4: z-dimension pools vs. xy-kernel pools (±coefficients)."""

from conftest import run_experiment

from repro.experiments import figure4


def test_figure4_pool_variants(benchmark, scale):
    result = run_experiment(benchmark, figure4.run, scale=scale, seed=0)
    accuracy = {row[0]: row[2] for row in result.rows}

    # Projection-only accuracy on a small synthetic test set fluctuates by a
    # few points; compare with a tolerance wide enough to be seed-robust while
    # still catching order inversions.
    tolerance = 5.0

    # Paper shape 1: for the z-dimension pools, bigger pools never hurt.
    assert accuracy["z_128_g8"] >= accuracy["z_32_g8"] - tolerance

    # Paper shape 2: scaling coefficients help the xy-kernel pools.
    for pool in (16, 32, 64):
        assert accuracy[f"xy_{pool}_coeff"] >= accuracy[f"xy_{pool}"] - tolerance

    # Paper shape 3: the z-dimension pool at 64 entries is at least competitive
    # with the plain xy pool of the same size, without storing coefficients.
    assert accuracy["z_64_g8"] >= accuracy["xy_64"] - tolerance
