"""Benchmark for Table 3: compression ratio and LUT overhead of the paper's networks."""

from conftest import run_experiment

from repro.experiments import table3


def test_table3_compression(benchmark):
    result = run_experiment(benchmark, table3.run)
    ratios = dict(zip(result.column("network"), result.column("CR")))
    overheads = dict(zip(result.column("network"), result.column("LUT overhead (%)")))
    params = dict(zip(result.column("network"), result.column("total params")))

    # Paper shape: compression ratio grows with network size and approaches the
    # 8x bound for ResNet-14; the LUT overhead is only limiting for small nets.
    assert params["ResNet-s"] < params["ResNet-10"] < params["ResNet-14"]
    assert ratios["TinyConv"] < ratios["ResNet-10"] < ratios["ResNet-14"]
    assert ratios["ResNet-14"] > 6.5
    assert ratios["ResNet-14"] < 8.0
    # Small networks are LUT- and uncompressed-layer-dominated; the LUT share
    # shrinks as the network grows (paper: 29.7% for ResNet-s -> 4.3% for
    # ResNet-14).  TinyConv is excluded from the ordering because our 100-class
    # Quickdraw head dominates its storage (see the runner's note).
    assert overheads["ResNet-s"] > overheads["ResNet-10"] > overheads["ResNet-14"]
    assert overheads["ResNet-14"] < 10.0
    assert ratios["TinyConv"] < 3.0
    assert ratios["MobileNet-v2"] > 4.0  # only pointwise layers compressed
