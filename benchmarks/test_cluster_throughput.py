"""Cluster serving benchmark: N-replica scaling and kill-one-replica recovery.

Spawns real replica node *processes* (``python -m repro.serve.cluster.node``),
syncs the compiled ResNet-14 artifact to each over the wire (sha256-verified),
and drives the :class:`~repro.serve.cluster.router.ClusterRouter` through
``InferenceServer(worker_mode="cluster")`` with closed-loop bulk clients:

* **Scaling sweep** — goodput at 1, 2, and 3 replicas over the *same*
  request stream, asserting every width serves predictions that match the
  local engine (and the same argmax labels across widths — adding replicas
  must never change answers).
* **Kill-one-replica** — under steady 3-replica load, SIGKILL one node
  mid-run: every client request must still succeed (shards re-dispatch to
  survivors), and goodput must recover to at least the measured 2-replica
  level.  The run records requests, failures (asserted zero), shard
  retries, and the membership transition the router logged.

Results merge into ``BENCH_cluster.json`` at the repository root.
``REPRO_CLUSTER_BENCH_FAST=1`` (the CI smoke mode) shrinks the image count.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from conftest import bench_scale  # noqa: F401  (scale fixture)

from repro.core import EngineConfig
from repro.experiments.common import (
    calibrated_engine,
    compress_and_finetune,
    pretrained_model,
)
from repro.experiments.common import test_loader_for as held_out_loader_for
from repro.serve import InferenceServer, ModelRepository
from repro.serve.cluster import ClusterRouter, MembershipPolicy, sync_to_node

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"
REPO_ROOT = Path(__file__).resolve().parents[1]
FAST = os.environ.get("REPRO_CLUSTER_BENCH_FAST", "") not in ("", "0")

CLIENTS = 4
BATCH_ROWS = 8

_PREPARED = {}


def _prepared(scale):
    if scale.name not in _PREPARED:
        pretrained = pretrained_model("resnet14", "cifar10", scale, seed=0)
        result, _ = compress_and_finetune(pretrained, scale, finetune=False, seed=0)
        engine = calibrated_engine(
            result,
            pretrained,
            scale,
            config=EngineConfig(
                lut_bitwidth=8, calibration_batches=scale.calibration_batches
            ),
        )
        loader = held_out_loader_for(pretrained, scale)
        samples = []
        for inputs, _targets in loader:
            samples.extend(np.asarray(inputs))
        limit = 32 if FAST else 128
        samples = np.stack(samples[:limit])
        _PREPARED[scale.name] = (engine, samples, engine.predict(samples))
    return _PREPARED[scale.name]


def _merge_bench_record(update):
    """Read-modify-write ``BENCH_cluster.json`` (same contract as the other
    bench files: each test owns its keys, whichever order they run in)."""
    record = {}
    if BENCH_PATH.exists():
        try:
            record = json.loads(BENCH_PATH.read_text())
        except ValueError:
            record = {}
    record.update(update)
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _spawn_node(repo_root: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cluster.node", "--repo", str(repo_root)],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env, text=True,
    )
    ready = process.stdout.readline().strip()
    assert ready.startswith("READY "), f"replica node never came up: {ready!r}"
    host, port = ready.split()[1].rsplit(":", 1)
    return process, (host, int(port))


def _closed_loop(server, samples, seconds=None, requests=None):
    """CLIENTS threads issue blocking BATCH_ROWS-row predict_batch calls.

    Runs until ``requests`` total requests (when set) or for ``seconds``;
    returns (completed, failed, wall_s, labels_of_first_request).
    """
    completed = [0]
    failed = [0]
    first_labels = [None]
    lock = threading.Lock()
    stop_at = None if seconds is None else time.perf_counter() + seconds
    budget = [requests if requests is not None else -1]

    def client(offset):
        cursor = offset * BATCH_ROWS
        while True:
            with lock:
                if budget[0] == 0:
                    return
                if budget[0] > 0:
                    budget[0] -= 1
            if stop_at is not None and time.perf_counter() >= stop_at:
                return
            rows = np.take(
                samples, range(cursor, cursor + BATCH_ROWS), axis=0, mode="wrap"
            )
            cursor += BATCH_ROWS
            try:
                out = server.predict_batch("resnet14", rows, timeout=300.0)
            except Exception:
                with lock:
                    failed[0] += 1
                continue
            with lock:
                completed[0] += 1
                if first_labels[0] is None:
                    first_labels[0] = np.argmax(out, axis=1).tolist()

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return completed[0], failed[0], time.perf_counter() - start, first_labels[0]


def _cluster(tmp_path, repository, n, tag):
    """Spawn ``n`` replica processes synced from ``repository``; returns
    (processes, router, server)."""
    processes, addresses = [], []
    for i in range(n):
        process, address = _spawn_node(tmp_path / f"{tag}-replica{i}")
        processes.append(process)
        addresses.append(address)
    for address in addresses:
        sync_to_node(address, repository)
    router = ClusterRouter(
        addresses,
        policy=MembershipPolicy(probe_interval_s=0.25, request_timeout_s=300.0),
    )
    server = InferenceServer(repository, worker_mode="cluster", cluster=router)
    return processes, router, server


def _teardown(processes, router, server):
    server.close()
    router.close()
    for process in processes:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=60)


def test_cluster_scaling_sweep(scale, tmp_path):
    engine, samples, expected = _prepared(scale)
    repository = ModelRepository(tmp_path / "front-repo")
    repository.publish(engine.compile(), "resnet14")

    total_requests = (len(samples) // BATCH_ROWS) * (2 if FAST else 4)
    sweep = []
    labels_by_width = {}
    for replicas in (1, 2, 3):
        processes, router, server = _cluster(tmp_path, repository, replicas, f"n{replicas}")
        try:
            # Warm-up (replica-side artifact load + plan compile) out of the
            # timed window, and correctness against the local engine.
            warm = server.predict_batch("resnet14", samples[:BATCH_ROWS], timeout=600.0)
            np.testing.assert_allclose(
                warm, expected[:BATCH_ROWS], rtol=1e-9, atol=1e-12
            )
            completed, failures, wall_s, _ = _closed_loop(
                server, samples, requests=total_requests
            )
            assert failures == 0, f"{failures} failed requests at {replicas} replicas"
            assert completed == total_requests
            # One deterministic reference request per width, outside the
            # timed window: the labels must agree across widths.
            probe = server.predict_batch("resnet14", samples[:BATCH_ROWS], timeout=300.0)
            labels_by_width[replicas] = np.argmax(probe, axis=1).tolist()
            sweep.append(
                {
                    "replicas": replicas,
                    "requests": completed,
                    "rows_per_request": BATCH_ROWS,
                    "wall_s": round(wall_s, 4),
                    "images_per_s": round(completed * BATCH_ROWS / wall_s, 2),
                    "shard_retries": router.snapshot()["counters"]["shard_retries"],
                }
            )
        finally:
            _teardown(processes, router, server)

    # Identical predictions at every width: replication must not change answers.
    assert labels_by_width[1] == labels_by_width[2] == labels_by_width[3]

    record = _merge_bench_record(
        {
            "cluster_scaling": {
                "clients": CLIENTS,
                "images": len(samples),
                "fast_mode": FAST,
                "sweep": sweep,
            }
        }
    )
    print()
    print(json.dumps(record["cluster_scaling"], indent=2))


def test_cluster_kill_one_replica_recovery(scale, tmp_path):
    engine, samples, expected = _prepared(scale)
    repository = ModelRepository(tmp_path / "front-repo-kill")
    repository.publish(engine.compile(), "resnet14")

    processes, router, server = _cluster(tmp_path, repository, 3, "kill")
    try:
        warm = server.predict_batch("resnet14", samples[:BATCH_ROWS], timeout=600.0)
        np.testing.assert_allclose(warm, expected[:BATCH_ROWS], rtol=1e-9, atol=1e-12)

        window_s = 2.0 if FAST else 5.0
        before, before_failed, before_s, _ = _closed_loop(
            server, samples, seconds=window_s
        )

        # SIGKILL one replica, then immediately keep the load on: the kill
        # window's requests ride the crash (retry-on-replica-failure), the
        # recovery window measures the surviving pair's steady goodput.
        processes[0].send_signal(signal.SIGKILL)
        during, during_failed, during_s, _ = _closed_loop(
            server, samples, seconds=window_s
        )
        processes[0].wait(timeout=60)
        after, after_failed, after_s, _ = _closed_loop(
            server, samples, seconds=window_s
        )

        assert before_failed == during_failed == after_failed == 0, (
            "client-visible failures across the kill: "
            f"{before_failed}/{during_failed}/{after_failed}"
        )
        assert during > 0 and after > 0, "goodput never recovered after the kill"
        snapshot = router.snapshot()
        assert snapshot["counters"]["shard_retries"] >= 1

        record = _merge_bench_record(
            {
                "cluster_kill_one_replica": {
                    "replicas": 3,
                    "window_s": window_s,
                    "fast_mode": FAST,
                    "goodput_rps": {
                        "before_kill": round(before / before_s, 2),
                        "during_kill": round(during / during_s, 2),
                        "after_kill": round(after / after_s, 2),
                    },
                    "client_failures": before_failed + during_failed + after_failed,
                    "shard_retries": snapshot["counters"]["shard_retries"],
                    "rerouted_shards": snapshot["counters"]["rerouted_shards"],
                    "membership_events": [
                        {"from": e["from"], "to": e["to"]} for e in snapshot["events"]
                    ],
                    "final_membership": router.member_states(),
                }
            }
        )
        print()
        print(json.dumps(record["cluster_kill_one_replica"], indent=2))
    finally:
        _teardown(processes, router, server)
