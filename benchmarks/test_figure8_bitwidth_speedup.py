"""Benchmark for Figure 8: speedup vs. activation bitwidth (with/without precompute)."""

from conftest import run_experiment

from repro.experiments import figure8


def test_figure8_bitwidth_speedup(benchmark):
    result = run_experiment(benchmark, figure8.run)
    bits = result.column("activation bits")
    no_pre = dict(zip(bits, result.column("speedup (no precompute)")))
    pre = dict(zip(bits, result.column("speedup (precompute)")))

    # Paper shapes: both curves increase monotonically as bits shrink; without
    # precomputation the speedup approaches ~4x at 1 bit (paper: 3.9x) while the
    # precomputed variant saturates earlier (paper: ~2.3x at 1 bit).
    ordered_bits = sorted(bits, reverse=True)
    for a, b in zip(ordered_bits, ordered_bits[1:]):
        assert no_pre[b] >= no_pre[a]
        assert pre[b] >= pre[a]
    assert no_pre[8] == 1.0 and pre[8] == 1.0
    assert 3.0 <= no_pre[1] <= 7.0
    assert pre[1] < no_pre[1]
    assert 1.5 <= pre[1] <= 4.0
