"""Ablation benchmark: weight-index storage bitwidth vs. compression ratio (Eq. 4)."""

from conftest import run_experiment

from repro.experiments import ablations


def test_ablation_index_bitwidth(benchmark):
    result = run_experiment(benchmark, ablations.run_index_bitwidth)
    bits = result.column("index bits")
    ratios = dict(zip(bits, result.column("compression ratio")))

    # log2(S) = 6-bit indices maximise compression; byte and half-word indices
    # trade compression for cheaper accesses (the paper's implementation note).
    assert ratios[6] > ratios[8] > ratios[16]
    assert ratios[8] > 5.0  # ResNet-10 with 8-bit indices (paper: 6.51)
