"""Throughput benchmark: whole-network graph executor vs. the per-layer engine.

Measures end-to-end ``BitSerialInferenceEngine.evaluate`` on the ResNet-14 /
CIFAR-10 preset twice — once through the compiled network program (lower →
optimize passes → batched executor, the default since the whole-network
compiler landed) and once through PR 1's per-layer runtime-install engine
(``use_graph=False``) — and asserts the graph executor is at least 1.2×
faster while predicting the same labels.  The graph side wins on structure
the per-layer runtime cannot express: BatchNorm folded into the bit-serial
epilogues, dequantize→quantize pairs elided (integer activations across
compressed chains), the zero-point padding hoisted to compile-time border
constants, and cache-sized micro-batch tiling.  Results are written to
``BENCH_graph.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from conftest import bench_scale

from repro.core import EngineConfig
from repro.experiments.common import calibrated_engine, compress_and_finetune, pretrained_model
from repro.experiments.common import test_loader_for as held_out_loader_for

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_graph.json"
# Overridable for noisy shared CI runners; the recorded margin is ~1.35x.
SPEEDUP_TARGET = float(os.environ.get("REPRO_GRAPH_SPEEDUP_TARGET", "1.2"))


def _timed_evaluate_pair(engine, loader, rounds: int = 4):
    """Interleaved best-of-N timing of the graph and per-layer paths.

    Alternating the two paths within each round makes slow machine-state
    drift (thermal, background load) hit both sides equally instead of
    biasing whichever path happened to run in the quiet window.
    """
    accuracies = {}
    best = {True: float("inf"), False: float("inf")}
    for use_graph in (True, False):  # warm-up: compile program / plans
        engine.config = replace(engine.config, use_graph=use_graph)
        engine.evaluate(loader)
    for _ in range(rounds):
        for use_graph in (True, False):
            engine.config = replace(engine.config, use_graph=use_graph)
            start = time.perf_counter()
            accuracies[use_graph] = engine.evaluate(loader)
            best[use_graph] = min(best[use_graph], time.perf_counter() - start)
    return accuracies, best


def test_graph_throughput(scale):
    pretrained = pretrained_model("resnet14", "cifar10", scale, seed=0)
    result, _ = compress_and_finetune(pretrained, scale, finetune=False, seed=0)
    engine = calibrated_engine(
        result,
        pretrained,
        scale,
        config=EngineConfig(lut_bitwidth=8, calibration_batches=scale.calibration_batches),
    )
    loader = held_out_loader_for(pretrained, scale)
    images = sum(len(targets) for _, targets in loader)

    # Correctness first: the unoptimized program is bit-exact with the
    # per-layer plan path; the optimized program must predict identically.
    x = np.stack([loader.dataset[i][0] for i in range(min(8, images))])
    engine.config = replace(engine.config, use_graph=True, graph_optimize=False)
    unoptimized_logits = engine.predict(x)
    engine.config = replace(engine.config, use_graph=False)
    legacy_logits = engine.predict(x)
    np.testing.assert_array_equal(unoptimized_logits, legacy_logits)

    engine.config = replace(engine.config, use_graph=True, graph_optimize=False)
    unoptimized = engine.compile()
    engine.config = replace(engine.config, use_graph=True, graph_optimize=True)
    program = engine.compile()
    accuracies, seconds = _timed_evaluate_pair(engine, loader)
    graph_acc, graph_s = accuracies[True], seconds[True]
    legacy_acc, legacy_s = accuracies[False], seconds[False]
    speedup = legacy_s / graph_s

    record = {
        "benchmark": "graph_throughput",
        "network": "resnet14",
        "dataset": "cifar10",
        "scale": scale.name,
        "images": images,
        "program_ops": len(program.ops),
        "requantize_fused": program.count("requantize"),
        "batchnorms_folded": unoptimized.count("batchnorm") - program.count("batchnorm"),
        "executor_tile": engine._executor().tile,
        "legacy_seconds": round(legacy_s, 4),
        "graph_seconds": round(graph_s, 4),
        "legacy_images_per_second": round(images / legacy_s, 2),
        "graph_images_per_second": round(images / graph_s, 2),
        "speedup": round(speedup, 2),
        "legacy_accuracy": round(float(legacy_acc), 4),
        "graph_accuracy": round(float(graph_acc), 4),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))

    # Identical accuracy up to the documented numerics contract: a single-LSB
    # requantization flip at a rounding boundary (vanishingly rare, but
    # platform-dependent) may move at most one prediction.
    assert abs(graph_acc - legacy_acc) <= 1.0 / images + 1e-12, (
        "execution paths disagree on predictions beyond the documented tolerance"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"graph executor is only {speedup:.2f}x faster than the per-layer "
        f"engine (target {SPEEDUP_TARGET}x)"
    )


def test_graph_throughput_scale_fixture(scale):
    """The benchmark honours REPRO_BENCH_SCALE like every other benchmark."""
    assert scale.name == bench_scale().name
