"""Throughput benchmark: the pipeline's optimization levels, O0..O4.

Measures end-to-end ``Executor.evaluate`` on the ResNet-14 / CIFAR-10 preset
at every pipeline optimization level — ``O0`` (reference lowering), ``O1``
(graph passes), ``O2`` (+fusion/arena memory plan), ``O3`` (+compile-time
kernel autotuning), ``O4`` (+native codegen backend: the planned schedule
compiled to C and run via ctypes) — plus PR 2's pooled executor
(``memory_plan=False``, the refcounted buffer-pool path kept as the
fallback) on the same optimized program.  Asserts:

* every level produces identical predictions (same accuracy, and O1..O3 are
  bitwise identical to each other; O0 is the bit-exact reference),
* the pipeline's IR verifier was exercised for every compiled level (the
  fast CI smoke fails if a compile path stops verifying),
* the planned ``O3`` executor beats the pooled path by the speedup target
  while predicting bitwise-identically,
* the static arena stays below the pooled executor's *measured* peak (live
  buffers plus free lists), and — on machines with ≥ 2 CPUs — sharding a
  large batch across the arena pool beats the single-shard plan,
* when the host can build it (otherwise O4 falls back to the plan backend
  and these are skipped): the native backend is bitwise identical to the
  plan backend at a pinned tile, plans the *same* arena (byte parity), and
  is at least as fast as ``O3``.

Results (one row per level, plus the autotuner's recorded decisions and the
O3 pipeline report) are written to ``BENCH_plan.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import bench_scale

from repro.core import OPT_LEVELS, EngineConfig, Executor
from repro.experiments.common import calibrated_engine, compress_and_finetune, pretrained_model
from repro.experiments.common import test_loader_for as held_out_loader_for

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_plan.json"
# Overridable for noisy shared CI runners; the committed record's margin is
# well above the 1.2x acceptance floor.
SPEEDUP_TARGET = float(os.environ.get("REPRO_PLAN_SPEEDUP_TARGET", "1.2"))
SHARD_TARGET = float(os.environ.get("REPRO_PLAN_SHARD_TARGET", "1.15"))
# O4 (native) vs O3 (plan): the hard floor is parity — the native backend
# must never lose to the schedule it compiled; the committed record's margin
# is well above it (the ISSUE target is 2x on this preset).
O4_TARGET = float(os.environ.get("REPRO_PLAN_O4_TARGET", "1.0"))
FAST = os.environ.get("REPRO_PLAN_BENCH_FAST", "") not in ("", "0")


def _interleaved_best(executors, loader, rounds):
    """Interleaved best-of-N evaluate timing so drift hits every side."""
    accuracies = {}
    best = {name: float("inf") for name in executors}
    for name, executor in executors.items():
        accuracies[name] = executor.evaluate(loader)  # warm-up + accuracy
    for _ in range(rounds):
        for name, executor in executors.items():
            start = time.perf_counter()
            executor.evaluate(loader)
            best[name] = min(best[name], time.perf_counter() - start)
    return accuracies, best


def test_plan_throughput(scale):
    pretrained = pretrained_model("resnet14", "cifar10", scale, seed=0)
    result, _ = compress_and_finetune(pretrained, scale, finetune=False, seed=0)
    engine = calibrated_engine(
        result,
        pretrained,
        scale,
        config=EngineConfig(lut_bitwidth=8, calibration_batches=scale.calibration_batches),
    )
    loader = held_out_loader_for(pretrained, scale)
    images = sum(len(targets) for _, targets in loader)

    # One executor per optimization level, through the engine's pipeline.
    executors = {level: engine._executor(level=level) for level in OPT_LEVELS}
    planned = executors["O3"]
    assert planned.exec_plan is not None
    assert planned.autotune is not None
    program = executors["O2"].program
    pooled = Executor(program, memory_plan=False, tile=planned.exec_plan.tile)
    # O4: the engine routes it to the native backend; on hosts without a C
    # compiler the executor downgrades to plan and the native-only
    # assertions below are skipped (the level sweep still runs it).
    native = executors["O4"]
    o4_native = native.backend == "native"

    # The verifier must have been exercised for every compiled level — this
    # is the CI smoke's guard against a compile path that stops verifying.
    for level, executor in executors.items():
        report = executor.program.pipeline_report
        assert report is not None and report["verifier_runs"] >= 1, (
            f"level {level} compiled without exercising the IR verifier"
        )

    # Correctness first: at the same tile, O1..O3 run the same ufunc
    # sequences — bitwise identical (pooled here runs the O2 program at
    # O3's tile); O0 is the bit-exact reference lowering.  Across tiles the
    # float stem conv's BLAS reduction order varies (the auto-tile
    # heuristic's long-standing caveat), so predictions are the invariant.
    x = np.stack([loader.dataset[i][0] for i in range(min(24, images))])
    np.testing.assert_array_equal(planned.run(x), pooled.run(x))
    np.testing.assert_array_equal(executors["O1"].run(x), executors["O2"].run(x))
    preds = executors["O0"].run(x).argmax(axis=1)
    for level in ("O1", "O2", "O3", "O4"):
        np.testing.assert_array_equal(
            executors[level].run(x).argmax(axis=1), preds, err_msg=level
        )

    # Native bit-exactness + arena parity: at a pinned tile the compiled
    # segments must reproduce the plan backend bit for bit, over the exact
    # same arena plan.
    if o4_native:
        oracle = Executor(
            native.program, backend="plan", tile=native.exec_plan.tile, n_shards=1
        )
        pinned = Executor(
            native.program, backend="native", tile=native.exec_plan.tile, n_shards=1
        )
        assert (
            pinned.plan_info["arena_bytes"] == oracle.plan_info["arena_bytes"]
        ), "native backend planned a different arena than the plan backend"
        np.testing.assert_array_equal(pinned.run(x), oracle.run(x))

    rounds = 1 if FAST else 4
    sweep = dict(executors)
    sweep["pooled"] = pooled
    accuracies, seconds = _interleaved_best(sweep, loader, rounds)
    speedup = seconds["pooled"] / seconds["O3"]
    assert len(set(accuracies.values())) == 1, (
        f"optimization levels disagree on predictions: {accuracies}"
    )

    # Peak memory: the static arena vs. the pooled executor's measured peak
    # (live buffers + pool free lists) at the same tile, after steady state.
    tracked = Executor(program, memory_plan=False, tile=planned.exec_plan.tile,
                       track_memory=True)
    tile_batch = x[: planned.exec_plan.tile]
    for _ in range(3):
        tracked.run(tile_batch)
    arena_bytes = planned.plan_info["arena_bytes"]
    pooled_peak = tracked.peak_pool_bytes

    # Snapshot the O3 pipeline report now: the serial shard-baseline below
    # rebinds the same program and would otherwise overwrite the report's
    # schedule/tune entries with its own (1-shard) configuration.
    import copy

    pipeline_report = copy.deepcopy(planned.program.pipeline_report)

    # Shard scaling: measured on a large batch; asserted only with >= 2 CPUs
    # (a single core cannot promise parallel speedup).  The serial baseline
    # pins the planned executor's tile so the comparison isolates sharding.
    cpus = os.cpu_count() or 1
    shard_speedup = None
    if planned.n_shards > 1:
        big = np.concatenate([x] * max(1, 128 // len(x)))
        serial = Executor(planned.program, n_shards=1, tile=planned.exec_plan.tile)
        for executor in (serial, planned):
            executor.run(big)
        best = {"serial": float("inf"), "sharded": float("inf")}
        for _ in range(rounds + 1):
            for name, executor in (("serial", serial), ("sharded", planned)):
                start = time.perf_counter()
                executor.run(big)
                best[name] = min(best[name], time.perf_counter() - start)
        shard_speedup = best["serial"] / best["sharded"]

    record = {
        "benchmark": "plan_throughput",
        "network": "resnet14",
        "dataset": "cifar10",
        "scale": scale.name,
        "images": images,
        "cpus": cpus,
        "program_ops": len(program.ops),
        "plan": dict(planned.plan_info),
        "levels": {
            level: {
                "seconds": round(seconds[level], 4),
                "images_per_second": round(images / seconds[level], 2),
                "ops": len(executors[level].program.ops),
            }
            for level in OPT_LEVELS
        },
        # Full autotune decisions (with candidate timings) live inside
        # "plan"; the pipeline report carries the slim replayable winners.
        "pipeline": pipeline_report,
        "o4": {
            "backend": native.backend,
            "speedup_vs_o3": round(seconds["O3"] / seconds["O4"], 2),
            "native": (native.plan_info or {}).get("native"),
            "fallback_reason": (native.program.pipeline_report or {}).get(
                "fallback_reason"
            ),
        },
        "pooled_peak_bytes": int(pooled_peak),
        "arena_bytes": int(arena_bytes),
        "pooled_seconds": round(seconds["pooled"], 4),
        "planned_seconds": round(seconds["O3"], 4),
        "pooled_images_per_second": round(images / seconds["pooled"], 2),
        "planned_images_per_second": round(images / seconds["O3"], 2),
        "speedup": round(speedup, 2),
        "shard_speedup": round(shard_speedup, 2) if shard_speedup else None,
        "accuracy": round(float(accuracies["O3"]), 4),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))

    assert 0 < arena_bytes < pooled_peak, (
        f"static arena ({arena_bytes} B) should beat the pooled executor's "
        f"measured peak ({pooled_peak} B)"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"planned O3 executor is only {speedup:.2f}x faster than the pooled "
        f"executor (target {SPEEDUP_TARGET}x)"
    )
    if shard_speedup is not None and cpus >= 2:
        assert shard_speedup >= SHARD_TARGET, (
            f"{planned.n_shards}-shard execution is only {shard_speedup:.2f}x "
            f"over serial on {cpus} CPUs (target {SHARD_TARGET}x)"
        )
    if o4_native:
        o4_speedup = seconds["O3"] / seconds["O4"]
        assert o4_speedup >= O4_TARGET, (
            f"native O4 executor is only {o4_speedup:.2f}x over the O3 plan "
            f"executor (target {O4_TARGET}x)"
        )


def test_plan_throughput_scale_fixture(scale):
    """The benchmark honours REPRO_BENCH_SCALE like every other benchmark."""
    assert scale.name == bench_scale().name
