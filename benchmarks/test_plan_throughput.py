"""Throughput benchmark: ahead-of-time execution plan vs. the pooled executor.

Measures end-to-end ``Executor.evaluate`` on the ResNet-14 / CIFAR-10 preset
through the same optimized :class:`NetworkProgram` twice — once with the
ahead-of-time execution plan (static arena, fused elementwise steps, plan
specializations, shard pool) and once through PR 2's pooled executor
(``memory_plan=False``, the refcounted buffer-pool path kept as the
fallback) — and asserts the planned executor is at least 1.2× faster while
predicting bitwise-identically.  It also asserts the static arena is
smaller than the pooled executor's *measured* peak (live buffers plus free
lists), and, on machines with ≥ 2 CPUs, that sharding a large batch across
the arena pool beats the single-shard plan.  Results are written to
``BENCH_plan.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import bench_scale

from repro.core import EngineConfig, Executor
from repro.experiments.common import calibrated_engine, compress_and_finetune, pretrained_model
from repro.experiments.common import test_loader_for as held_out_loader_for

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_plan.json"
# Overridable for noisy shared CI runners; the committed record's margin is
# well above the 1.2x acceptance floor.
SPEEDUP_TARGET = float(os.environ.get("REPRO_PLAN_SPEEDUP_TARGET", "1.2"))
SHARD_TARGET = float(os.environ.get("REPRO_PLAN_SHARD_TARGET", "1.15"))
FAST = os.environ.get("REPRO_PLAN_BENCH_FAST", "") not in ("", "0")


def _timed_evaluate_pair(pooled, planned, loader, rounds):
    """Interleaved best-of-N timing so machine-state drift hits both sides."""
    accuracies = {}
    best = {"pooled": float("inf"), "planned": float("inf")}
    for name, executor in (("pooled", pooled), ("planned", planned)):
        accuracies[name] = executor.evaluate(loader)  # warm-up + accuracy
    for _ in range(rounds):
        for name, executor in (("pooled", pooled), ("planned", planned)):
            start = time.perf_counter()
            executor.evaluate(loader)
            best[name] = min(best[name], time.perf_counter() - start)
    return accuracies, best


def test_plan_throughput(scale):
    pretrained = pretrained_model("resnet14", "cifar10", scale, seed=0)
    result, _ = compress_and_finetune(pretrained, scale, finetune=False, seed=0)
    engine = calibrated_engine(
        result,
        pretrained,
        scale,
        config=EngineConfig(lut_bitwidth=8, calibration_batches=scale.calibration_batches),
    )
    loader = held_out_loader_for(pretrained, scale)
    images = sum(len(targets) for _, targets in loader)
    program = engine.compile(optimize=True)

    planned = Executor(program)
    assert planned.exec_plan is not None
    pooled = Executor(program, memory_plan=False, tile=planned.exec_plan.tile)

    # Correctness first: the planned executor runs the same ufunc sequence
    # into preallocated memory — outputs must be bitwise identical.
    x = np.stack([loader.dataset[i][0] for i in range(min(24, images))])
    np.testing.assert_array_equal(planned.run(x), pooled.run(x))

    rounds = 1 if FAST else 4
    accuracies, seconds = _timed_evaluate_pair(pooled, planned, loader, rounds)
    speedup = seconds["pooled"] / seconds["planned"]
    assert accuracies["planned"] == accuracies["pooled"], (
        "planned and pooled executors disagree on predictions"
    )

    # Peak memory: the static arena vs. the pooled executor's measured peak
    # (live buffers + pool free lists) at the same tile, after steady state.
    tracked = Executor(program, memory_plan=False, tile=planned.exec_plan.tile,
                       track_memory=True)
    tile_batch = x[: planned.exec_plan.tile]
    for _ in range(3):
        tracked.run(tile_batch)
    arena_bytes = planned.plan_info["arena_bytes"]
    pooled_peak = tracked.peak_pool_bytes

    # Shard scaling: measured on a large batch; asserted only with >= 2 CPUs
    # (a single core cannot promise parallel speedup).
    cpus = os.cpu_count() or 1
    shard_speedup = None
    if planned.n_shards > 1:
        big = np.concatenate([x] * max(1, 128 // len(x)))
        serial = Executor(program, n_shards=1)
        for executor in (serial, planned):
            executor.run(big)
        best = {"serial": float("inf"), "sharded": float("inf")}
        for _ in range(rounds + 1):
            for name, executor in (("serial", serial), ("sharded", planned)):
                start = time.perf_counter()
                executor.run(big)
                best[name] = min(best[name], time.perf_counter() - start)
        shard_speedup = best["serial"] / best["sharded"]

    record = {
        "benchmark": "plan_throughput",
        "network": "resnet14",
        "dataset": "cifar10",
        "scale": scale.name,
        "images": images,
        "cpus": cpus,
        "program_ops": len(program.ops),
        "plan": dict(planned.plan_info),
        "pooled_peak_bytes": int(pooled_peak),
        "arena_bytes": int(arena_bytes),
        "pooled_seconds": round(seconds["pooled"], 4),
        "planned_seconds": round(seconds["planned"], 4),
        "pooled_images_per_second": round(images / seconds["pooled"], 2),
        "planned_images_per_second": round(images / seconds["planned"], 2),
        "speedup": round(speedup, 2),
        "shard_speedup": round(shard_speedup, 2) if shard_speedup else None,
        "accuracy": round(float(accuracies["planned"]), 4),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))

    assert 0 < arena_bytes < pooled_peak, (
        f"static arena ({arena_bytes} B) should beat the pooled executor's "
        f"measured peak ({pooled_peak} B)"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"planned executor is only {speedup:.2f}x faster than the pooled "
        f"executor (target {SPEEDUP_TARGET}x)"
    )
    if shard_speedup is not None and cpus >= 2:
        assert shard_speedup >= SHARD_TARGET, (
            f"{planned.n_shards}-shard execution is only {shard_speedup:.2f}x "
            f"over serial on {cpus} CPUs (target {SHARD_TARGET}x)"
        )


def test_plan_throughput_scale_fixture(scale):
    """The benchmark honours REPRO_BENCH_SCALE like every other benchmark."""
    assert scale.name == bench_scale().name
