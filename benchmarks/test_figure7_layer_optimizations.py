"""Benchmark for Figure 7: LUT caching and precomputation speedups per layer width."""

from conftest import run_experiment

from repro.experiments import figure7


def test_figure7_layer_optimizations(benchmark):
    result = run_experiment(benchmark, figure7.run)
    filters = result.column("filters")
    caching = dict(zip(filters, result.column("caching speedup")))
    precompute = dict(zip(filters, result.column("precompute+caching speedup")))

    # Paper shapes: caching always helps and helps more with more filters;
    # precomputation only adds on top once filters exceed the pool size (64),
    # reaching well above 2x at 192 filters (paper: 2.45x).
    assert all(speedup >= 1.0 for speedup in caching.values())
    assert caching[192] > caching[128] > caching[32]
    assert precompute[32] == caching[32]
    assert precompute[64] == caching[64]
    assert precompute[128] > caching[128]
    assert precompute[192] > 2.0
