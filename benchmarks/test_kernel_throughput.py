"""Throughput benchmark: compiled kernel plans vs. the legacy tap-loop kernel.

Measures end-to-end ``BitSerialInferenceEngine.evaluate`` on the ResNet-14 /
CIFAR-10 preset twice — once through the compiled per-layer kernel plans
(``use_kernel_plans=True``, the default) and once through the original
Python tap-loop kernels — and asserts the plan path is at least 5× faster
while predicting the same labels.  Results are written to
``BENCH_kernel.json`` at the repository root so future changes can track the
performance trajectory.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from conftest import bench_scale

from repro.core import EngineConfig
from repro.experiments.common import calibrated_engine, compress_and_finetune, pretrained_model
from repro.experiments.common import test_loader_for as held_out_loader_for

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"
SPEEDUP_TARGET = 5.0


def _timed_evaluate(engine, loader, use_kernel_plans: bool):
    engine.config = replace(engine.config, use_kernel_plans=use_kernel_plans)
    engine.evaluate(loader)  # warm-up: compile plans, touch caches
    start = time.perf_counter()
    accuracy = engine.evaluate(loader)
    return accuracy, time.perf_counter() - start


def test_kernel_throughput(scale):
    pretrained = pretrained_model("resnet14", "cifar10", scale, seed=0)
    result, _ = compress_and_finetune(pretrained, scale, finetune=False, seed=0)
    engine = calibrated_engine(
        result,
        pretrained,
        scale,
        config=EngineConfig(lut_bitwidth=8, calibration_batches=scale.calibration_batches),
    )
    loader = held_out_loader_for(pretrained, scale)
    images = sum(len(targets) for _, targets in loader)

    # Correctness first: with a full-precision LUT the two execution paths are
    # bit-exact per layer, so the logits must agree to float rounding.
    engine.set_lut_bitwidth(None)
    x = np.stack([loader.dataset[i][0] for i in range(min(8, images))])
    engine.config = replace(engine.config, use_kernel_plans=True)
    plan_logits = engine.predict(x)
    engine.config = replace(engine.config, use_kernel_plans=False)
    legacy_logits = engine.predict(x)
    np.testing.assert_allclose(plan_logits, legacy_logits, rtol=1e-12, atol=1e-10)

    # Throughput on the deployment configuration (8-bit quantized LUT).
    engine.set_lut_bitwidth(8)
    plan_acc, plan_s = _timed_evaluate(engine, loader, use_kernel_plans=True)
    legacy_acc, legacy_s = _timed_evaluate(engine, loader, use_kernel_plans=False)
    speedup = legacy_s / plan_s

    record = {
        "benchmark": "kernel_throughput",
        "network": "resnet14",
        "dataset": "cifar10",
        "scale": scale.name,
        "images": images,
        "legacy_seconds": round(legacy_s, 4),
        "plan_seconds": round(plan_s, 4),
        "legacy_images_per_second": round(images / legacy_s, 2),
        "plan_images_per_second": round(images / plan_s, 2),
        "speedup": round(speedup, 2),
        "legacy_accuracy": round(float(legacy_acc), 4),
        "plan_accuracy": round(float(plan_acc), 4),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))

    assert plan_acc == legacy_acc, "execution paths disagree on predictions"
    assert speedup >= SPEEDUP_TARGET, (
        f"plan-based engine is only {speedup:.2f}x faster than the legacy "
        f"kernel (target {SPEEDUP_TARGET}x)"
    )


def test_kernel_throughput_scale_fixture(scale):
    """The benchmark honours REPRO_BENCH_SCALE like every other benchmark."""
    assert scale.name == bench_scale().name
