"""Benchmark for Table 5: accuracy vs. lookup-table bitwidth (8-bit activations)."""

from conftest import run_experiment

from repro.experiments import table5

# Two representative network-dataset pairs keep the tiny-scale benchmark fast;
# pass networks=None to table5.run for all five combinations.
BENCH_NETWORKS = (
    ("resnet_s", "cifar10"),
    ("tinyconv", "quickdraw"),
)


def test_table5_lut_bitwidth(benchmark, scale):
    result = run_experiment(
        benchmark, table5.run, scale=scale, seed=0, networks=BENCH_NETWORKS
    )
    for row in result.rows:
        network = row[0]
        no_lut, lut16, lut8, lut4 = row[2], row[3], row[4], row[5]
        # Paper shape: 16- and 8-bit LUTs are essentially lossless against the
        # no-LUT reference; 4-bit costs a little more.
        assert abs(lut16 - no_lut) <= 5.0, f"{network}: 16-bit LUT should be lossless"
        assert abs(lut8 - no_lut) <= 5.0, f"{network}: 8-bit LUT should be near-lossless"
        assert lut4 <= lut8 + 2.0, f"{network}: 4-bit LUT should not beat 8-bit"
