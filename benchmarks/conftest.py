"""Shared helpers for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the paper
(see DESIGN.md §4).  Each benchmark:

* runs the corresponding experiment runner once (via pytest-benchmark's
  pedantic mode so the wall-clock cost of regenerating the result is recorded),
* prints the reproduced rows next to the paper's numbers,
* asserts the qualitative shape the paper reports (who wins, how trends move).

The scale preset defaults to ``tiny`` and can be overridden with the
``REPRO_BENCH_SCALE`` environment variable (``tiny`` / ``small`` / ``full``).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scale import get_scale


def bench_scale():
    """Scale preset used by the training-backed benchmarks."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "tiny"))


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def run_experiment(benchmark, runner, **kwargs):
    """Execute an experiment runner exactly once under pytest-benchmark."""
    result = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print()
    print(result.to_table())
    return result


# The streaming benchmarks' shared model: tinyconv at 64x64 (a shallow,
# bitserial-dominated graph on a frame large enough that receptive-field
# dilation leaves most tiles clean), compiled once per pytest session.
_STREAM_PREPARED = {}


def stream_prepared(image_size: int = 64):
    """(optimized program, engine) of tinyconv at ``image_size``, cached."""
    if image_size not in _STREAM_PREPARED:
        import numpy as np

        from repro.core import (
            BitSerialInferenceEngine,
            CompressionPolicy,
            EngineConfig,
            compress_model,
        )
        from repro.models import create_model
        from repro.nn import DataLoader
        from repro.nn.data.dataset import ArrayDataset

        model = create_model(
            "tinyconv", num_classes=10, in_channels=3, rng=0, image_size=image_size
        )
        result = compress_model(
            model, (3, image_size, image_size), pool_size=16,
            policy=CompressionPolicy(group_size=8), seed=0,
        )
        rng = np.random.default_rng(0)
        loader = DataLoader(
            ArrayDataset(
                rng.normal(size=(32, 3, image_size, image_size)),
                rng.integers(0, 10, size=32),
            ),
            batch_size=16,
        )
        engine = BitSerialInferenceEngine(
            result.model, result.pool,
            EngineConfig(activation_bitwidth=8, lut_bitwidth=8, calibration_batches=2),
        )
        engine.calibrate(loader)
        _STREAM_PREPARED[image_size] = (engine.compile(optimize=True), engine)
    return _STREAM_PREPARED[image_size]
