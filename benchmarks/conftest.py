"""Shared helpers for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the paper
(see DESIGN.md §4).  Each benchmark:

* runs the corresponding experiment runner once (via pytest-benchmark's
  pedantic mode so the wall-clock cost of regenerating the result is recorded),
* prints the reproduced rows next to the paper's numbers,
* asserts the qualitative shape the paper reports (who wins, how trends move).

The scale preset defaults to ``tiny`` and can be overridden with the
``REPRO_BENCH_SCALE`` environment variable (``tiny`` / ``small`` / ``full``).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scale import get_scale


def bench_scale():
    """Scale preset used by the training-backed benchmarks."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "tiny"))


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def run_experiment(benchmark, runner, **kwargs):
    """Execute an experiment runner exactly once under pytest-benchmark."""
    result = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print()
    print(result.to_table())
    return result
