"""Ablation benchmark: input-oriented vs. weight-oriented LUT ordering (paper §4.2)."""

from conftest import run_experiment

from repro.experiments import ablations


def test_ablation_lut_layout(benchmark):
    result = run_experiment(benchmark, ablations.run_lut_layout)
    speedups = result.column("speedup")
    # The input-oriented (cacheable) layout never loses against the
    # weight-oriented layout, which is why the paper deploys it.
    assert all(s >= 1.0 for s in speedups)
    assert max(s for s in speedups) > 1.1
