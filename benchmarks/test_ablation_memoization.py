"""Ablation benchmark: precomputation vs. memoization (paper §4.3 / appendix)."""

from conftest import run_experiment

from repro.experiments import ablations


def test_ablation_memoization(benchmark):
    result = run_experiment(benchmark, ablations.run_memoization)
    filters = result.column("filters")
    pre = dict(zip(filters, result.column("precompute speedup")))
    memo = dict(zip(filters, result.column("memoization speedup")))

    # The paper picked precomputation: it should match or beat memoization for
    # layers wider than the pool, and both should beat no reuse there.
    for f in filters:
        if f > 64:
            assert pre[f] > 1.0 and memo[f] > 1.0
            assert pre[f] >= memo[f]
