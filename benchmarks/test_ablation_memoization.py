"""Ablation benchmark: precomputation vs. memoization (paper §4.3 / appendix).

Two reuse regimes, recorded side by side in ``BENCH_stream.json``:

* **modeled** — the paper's MCU cycle model for *spatial* reuse inside one
  frame (precompute the activation-slice LUT vs. memoize popcount partials);
* **measured** — host wall-clock for *temporal* reuse across frames (the
  dirty-tile streaming executor of :mod:`repro.core.stream_plan` vs. full
  recompute), on the same tinyconv/64x64 preset the throughput benchmark
  sweeps.

The modeled numbers say what reuse is worth on the target device; the
measured numbers show the same memoization idea paying off end to end on a
real schedule, bit-exactly.
"""

import json
import time

import numpy as np

from conftest import run_experiment, stream_prepared

from repro.experiments import ablations


def test_ablation_memoization(benchmark):
    result = run_experiment(benchmark, ablations.run_memoization)
    filters = result.column("filters")
    pre = dict(zip(filters, result.column("precompute speedup")))
    memo = dict(zip(filters, result.column("memoization speedup")))

    # The paper picked precomputation: it should match or beat memoization for
    # layers wider than the pool, and both should beat no reuse there.
    for f in filters:
        if f > 64:
            assert pre[f] > 1.0 and memo[f] > 1.0
            assert pre[f] >= memo[f]


def test_ablation_memoization_measured_host():
    """Measured temporal memoization next to the modeled MCU cycles."""
    from test_stream_throughput import (
        IMAGE_SIZE,
        _measure,
        _merge_bench_record,
        _temporal_frames,
    )
    from repro.core import compile_stream_plan

    modeled = ablations.run_memoization()
    modeled_rows = [dict(zip(modeled.headers, row)) for row in modeled.rows]

    program, _ = stream_prepared(IMAGE_SIZE)
    plan = compile_stream_plan(program, tile=8, seed=0)
    plan.executor.run(np.zeros((1, 3, IMAGE_SIZE, IMAGE_SIZE)))
    frames = _temporal_frames(0.0625, 12, seed=0)
    start = time.perf_counter()
    measured = _measure(plan, frames)
    measured["wall_s"] = round(time.perf_counter() - start, 2)

    record = {
        "modeled_mcu": {
            "runner": "ablations.run_memoization",
            "unit": "Mcycles",
            "rows": modeled_rows,
        },
        "measured_host": dict(
            measured,
            model="tinyconv",
            image_size=IMAGE_SIZE,
            tile=8,
            change_fraction=0.0625,
            threshold=0.0,
        ),
    }
    merged = _merge_bench_record({"ablation_memoization": record})
    print()
    print(json.dumps(merged["ablation_memoization"], indent=2))

    # The measured numbers must tell the same story as the model: reuse wins,
    # and it wins without changing a single prediction.
    assert measured["mismatches"] == 0
    assert measured["modes"]["incremental"] > 0
    assert measured["speedup"] > 1.0, (
        f"temporal memoization lost to full recompute: {measured['speedup']}x"
    )
