"""Benchmark for §5.5: weight pools vs. binarized networks (TinyConv / CIFAR-10)."""

from conftest import run_experiment

from repro.experiments import section55


def test_section55_binarized(benchmark, scale):
    result = run_experiment(benchmark, section55.run, scale=scale, seed=0)
    accuracy = {row[0].split(" (")[0]: row[1] for row in result.rows}
    storage = {row[0].split(" (")[0]: row[2] for row in result.rows}

    # Paper shape: at comparable (heavily reduced) storage, the weight-pool
    # network retains clearly more accuracy than the binarized one.
    assert accuracy["weight pool"] > accuracy["binarized"]
    assert storage["weight pool"] < storage["original"]
    assert storage["binarized"] < storage["original"]
