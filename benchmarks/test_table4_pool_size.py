"""Benchmark for Table 4: accuracy vs. weight-pool size (32 / 64 / 128)."""

from conftest import run_experiment

from repro.experiments import table4

# The tiny benchmark preset runs three of the paper's five network-dataset
# combinations; pass networks=None to table4.run for the full set.
BENCH_NETWORKS = (
    ("resnet_s", "cifar10"),
    ("resnet10", "cifar10"),
    ("tinyconv", "quickdraw"),
)


def test_table4_pool_size(benchmark, scale):
    result = run_experiment(
        benchmark, table4.run, scale=scale, seed=0, networks=BENCH_NETWORKS
    )

    for row in result.rows:
        network, original = row[0], row[2]
        pool32, pool64, pool128 = row[3], row[4], row[5]
        # Paper shape: pool 64 is sufficient — its accuracy stays within a
        # modest gap of the uncompressed network, and growing the pool from 32
        # to 128 never hurts materially.
        assert pool64 >= original - 20.0, f"{network}: pool 64 collapsed"
        assert pool128 >= pool32 - 5.0, f"{network}: larger pool should not be worse"
        assert pool64 >= pool32 - 5.0, f"{network}: pool 64 should match or beat pool 32"
