"""Streaming inference benchmark: dirty-tile incremental vs. full recompute.

Drives :func:`repro.core.compile_stream_plan` on the tinyconv / 64x64 preset
with :class:`repro.datasets.PatternStream` temporal workloads — frame N+1
differs from frame N only inside a drifting patch whose area is the sweep's
``change_fraction`` — and sweeps change fraction x tile size, recording
per-configuration frames/s next to the full-recompute reference (batch-1
``Executor.run`` per frame, the non-streaming serving cost).

The contract asserted here is the paper-style memoization win *without*
approximation: at threshold 0 every streamed prediction must be bitwise
identical to the full recompute, and at ≤10% dirty area the incremental
path must clear **2x** the full-recompute throughput
(``REPRO_STREAM_SPEEDUP_TARGET`` overrides).  The ``change_fraction=1.0``
row documents the other end of the sweep: the measured crossover fallback
must engage and hand every frame to the full path, so streaming never
costs more than a bounded constant over plain execution.

The sweep is written to ``BENCH_stream.json`` at the repository root
(read-modify-write: the memoization ablation shares the file).
``REPRO_STREAM_BENCH_FAST=1`` (the CI smoke mode) shrinks the frame count
and the tile sweep.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import stream_prepared

from repro.core import compile_stream_plan
from repro.datasets import PatternLibrary

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_stream.json"
FAST = os.environ.get("REPRO_STREAM_BENCH_FAST", "") not in ("", "0")
SPEEDUP_TARGET = float(os.environ.get("REPRO_STREAM_SPEEDUP_TARGET", "2.0"))

IMAGE_SIZE = 64
FRAMES = 8 if FAST else 24
CHANGE_FRACTIONS = (0.0, 0.01, 0.0625, 0.25, 1.0)
TILES = (8,) if FAST else (4, 8, 16)
LOW_CHANGE = 0.1  # the "≤10% dirty" regime the headline target applies to


def _merge_bench_record(update):
    """Read-modify-write ``BENCH_stream.json``: the throughput sweep and the
    memoization ablation each own their top-level keys."""
    record = {}
    if BENCH_PATH.exists():
        try:
            record = json.loads(BENCH_PATH.read_text())
        except ValueError:
            record = {}
    record.update(update)
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _temporal_frames(change_fraction, count, seed=0):
    """``count`` consecutive frames of a drifting-patch pattern stream."""
    library = PatternLibrary(
        num_classes=4, channels=3, image_size=IMAGE_SIZE, seed=seed
    )
    stream = library.stream(0, change_fraction=change_fraction, rng=seed)
    return np.concatenate([stream.frame[None], stream.take(count - 1)])


def _measure(plan, frames):
    """One sweep row: streamed vs. full-recompute time over the same frames.

    The first frame establishes the session reference (always a full pass)
    outside both timed windows; frames 2..N are the steady state being
    compared.  Bit-exactness is checked after the clocks stop.
    """
    steady = frames[1:]

    session = plan.session(threshold=0.0)
    session.process(frames[0])
    start = time.perf_counter()
    streamed = [session.process(frame) for frame in steady]
    stream_s = time.perf_counter() - start

    start = time.perf_counter()
    oracles = [plan.executor.run(frame[None])[0] for frame in steady]
    full_s = time.perf_counter() - start

    modes = {"full": 0, "incremental": 0, "cached": 0}
    mismatches = 0
    for (outputs, info), oracle in zip(streamed, oracles):
        modes[info["mode"]] += 1
        if not np.array_equal(outputs, oracle):
            mismatches += 1
    stats = session.stats()
    return {
        "frames": len(steady),
        "stream_ms_per_frame": round(stream_s / len(steady) * 1e3, 3),
        "full_ms_per_frame": round(full_s / len(steady) * 1e3, 3),
        "speedup": round(full_s / stream_s, 2),
        "modes": modes,
        "avg_dirty_fraction": round(stats["avg_dirty_fraction"], 4),
        "state_bytes": stats["state_bytes"],
        "mismatches": mismatches,
    }


def test_stream_throughput():
    program, engine = stream_prepared(IMAGE_SIZE)
    # Warm the oracle executor so kernel-plan compilation stays out of the
    # timed windows (compile_stream_plan's verification already ran it once).
    probe = np.zeros((1, 3, IMAGE_SIZE, IMAGE_SIZE))

    sweep = []
    crossovers = {}
    for tile in TILES:
        plan = compile_stream_plan(program, tile=tile, seed=0)
        plan.executor.run(probe)
        crossovers[str(tile)] = plan.crossover
        for fraction in CHANGE_FRACTIONS:
            frames = _temporal_frames(fraction, FRAMES, seed=0)
            row = {"tile": tile, "change_fraction": fraction}
            row.update(_measure(plan, frames))
            sweep.append(row)

    low_change = [
        row for row in sweep
        if row["tile"] == 8 and 0.0 < row["change_fraction"] <= LOW_CHANGE
    ]
    best = max(low_change, key=lambda row: row["speedup"])
    record = {
        "benchmark": "stream_throughput",
        "model": "tinyconv",
        "image_size": IMAGE_SIZE,
        "fast_mode": FAST,
        "cpus": os.cpu_count(),
        "threshold": 0.0,
        "frames_per_config": FRAMES,
        "change_fractions": list(CHANGE_FRACTIONS),
        "tiles": list(TILES),
        "crossover_by_tile": crossovers,
        "sweep": sweep,
        "best_low_change": {
            "tile": best["tile"],
            "change_fraction": best["change_fraction"],
            "speedup": best["speedup"],
        },
        "speedup_target": SPEEDUP_TARGET,
    }
    merged = _merge_bench_record({"stream_throughput": record})
    print()
    print(json.dumps(merged["stream_throughput"], indent=2))

    # Threshold 0 is bit-exact: every streamed prediction equals the full
    # recompute, in every mode, at every change fraction and tile size.
    for row in sweep:
        assert row["mismatches"] == 0, (
            f"tile {row['tile']} fraction {row['change_fraction']}: "
            f"{row['mismatches']} streamed predictions deviated from the oracle"
        )
    # A static stream is pure cache hits — no recomputation at all.
    for row in sweep:
        if row["change_fraction"] == 0.0:
            assert row["modes"]["cached"] == row["frames"], (
                f"static stream recomputed: {row['modes']}"
            )
    # The crossover fallback engages when the whole frame changes: the
    # planner hands every frame to the full path instead of paying dirty
    # tracking on top of a full recompute.
    for row in sweep:
        if row["change_fraction"] == 1.0:
            assert row["modes"]["full"] == row["frames"], (
                f"tile {row['tile']}: full-frame change did not fall back "
                f"to full recompute: {row['modes']}"
            )
    # Low-change streams actually took the incremental path ...
    assert any(row["modes"]["incremental"] > 0 for row in low_change), (
        "no low-change configuration executed incrementally"
    )
    # ... and clear the headline target.
    assert best["speedup"] >= SPEEDUP_TARGET, (
        f"incremental execution sustains only {best['speedup']:.2f}x the "
        f"full-recompute throughput at ≤{LOW_CHANGE:.0%} change "
        f"(target {SPEEDUP_TARGET}x)"
    )
