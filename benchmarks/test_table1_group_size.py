"""Benchmark for Table 1: accuracy vs. z-dimension group size (ResNet-14 / CIFAR-10)."""

from conftest import run_experiment

from repro.experiments import table1


def test_table1_group_size(benchmark, scale):
    result = run_experiment(benchmark, table1.run, scale=scale, seed=0)

    accuracy = dict(zip(result.column("group size"), result.column("accuracy (%)")))
    # Paper shape: group size 8 stays close to the original accuracy while 16
    # degrades markedly more; 4 compresses less but should not be worse than 16.
    assert accuracy[8] >= accuracy[16]
    assert accuracy[4] >= accuracy[16]
    drop_8 = accuracy["original"] - accuracy[8]
    drop_16 = accuracy["original"] - accuracy[16]
    assert drop_8 <= drop_16
    assert drop_8 <= 15.0  # group 8 keeps most of the accuracy at every scale
