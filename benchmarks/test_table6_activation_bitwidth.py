"""Benchmark for Table 6: accuracy vs. activation bitwidth + minimum bitwidth."""

from conftest import run_experiment

from repro.experiments import table6

BENCH_NETWORKS = (
    ("resnet_s", "cifar10"),
    ("tinyconv", "quickdraw"),
)


def test_table6_activation_bitwidth(benchmark, scale):
    result = run_experiment(
        benchmark,
        table6.run,
        scale=scale,
        seed=0,
        networks=BENCH_NETWORKS,
        activation_bitwidths=(8, 6, 5, 4, 3),
    )
    headers = list(result.headers)
    for row in result.rows:
        network = row[0]
        acc = dict(zip(headers, row))
        # Paper shape: 8-bit activations track the float pool closely; accuracy
        # degrades as bits shrink and the worst case is the lowest bitwidth.
        assert acc["8-bit (%)"] >= acc["float pool (%)"] - 10.0, network
        assert acc["3-bit (%)"] <= acc["8-bit (%)"] + 2.0, network
        assert min(acc["8-bit (%)"], acc["6-bit (%)"]) >= acc["3-bit (%)"] - 2.0, network
        # A minimum bitwidth is found and sits in the paper's 3-8 range.
        assert acc["min bitwidth (<1% drop)"] is None or 3 <= acc["min bitwidth (<1% drop)"] <= 8
